// Package persist is the durable history store: a segmented
// append-only write-ahead log of SQL-encoded history statements plus
// periodic snapshot checkpoints of the materialized database, with
// crash recovery that loads the latest valid checkpoint, replays the
// log tail, and truncates a torn final record.
//
// The paper's engine answers what-if queries over a transactional
// history; persist makes that history survive the process. The WAL is
// the history — one record per statement, record seq == history
// version — so it is never pruned: time travel and reenactment need
// the full statement sequence. Checkpoints bound recovery time and
// accelerate deep time travel; the base state (version 0) is simply
// the checkpoint at version 0.
//
// On-disk layout of a store directory:
//
//	checkpoint-00000000000000000000.ckpt   base state D0 (required)
//	checkpoint-00000000000000001000.ckpt   state after statement 1000
//	wal-00000000000000000001.log           statements 1..k
//	wal-00000000000000000k+1.log           statements k+1.. (active)
//
// All integers are little-endian. Statements are encoded as the SQL
// text their String rendering produces and parsed back through
// internal/sql on recovery; the encoder verifies parseability at
// append time so the WAL never holds an unreadable record.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// Format constants. The magic strings version the layout as a whole;
// bump them on incompatible changes.
const (
	segmentMagic    = "MAHIFWL1"
	checkpointMagic = "MAHIFCK1"

	// segmentHeaderSize is magic + first record seq.
	segmentHeaderSize = 8 + 8
	// recordHeaderSize is seq + payload length + CRC.
	recordHeaderSize = 8 + 4 + 4
	// maxRecordBytes caps one statement's SQL encoding; a length field
	// beyond it is treated as a torn or corrupt record rather than an
	// allocation request.
	maxRecordBytes = 16 << 20
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrCorrupt reports damage the store cannot safely recover from —
// a torn record in the middle of the log, a sequence gap, a missing
// base checkpoint. A torn *tail* is not corruption: it is the expected
// signature of a crash mid-append and is truncated silently.
var ErrCorrupt = errors.New("persist: corrupt store")

// ErrTorn marks an incomplete or checksum-failing record. Recovery
// treats it as the end of the committed log when it occurs at the tail
// of the last segment, and as ErrCorrupt anywhere else; a replication
// stream consumer treats it as a broken connection and reconnects.
var ErrTorn = errors.New("persist: torn record")

// errTorn is the historical internal name.
var errTorn = ErrTorn

// appendRecord appends one WAL record — [seq][len][crc][payload] with
// the CRC covering seq, len, and payload — to buf and returns the
// extended slice.
func appendRecord(buf []byte, seq uint64, payload []byte) []byte {
	var hdr [recordHeaderSize]byte
	binary.LittleEndian.PutUint64(hdr[0:8], seq)
	binary.LittleEndian.PutUint32(hdr[8:12], uint32(len(payload)))
	crc := crc32.Update(0, castagnoli, hdr[0:12])
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[12:16], crc)
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// recordSize returns the encoded size of a record with the given
// payload length.
func recordSize(payloadLen int) int64 { return int64(recordHeaderSize + payloadLen) }

// readRecord reads one record from r. It returns io.EOF at a clean
// record boundary and errTorn for an incomplete or checksum-failing
// record (the caller decides whether a torn record is a truncatable
// tail or corruption).
func readRecord(r io.Reader) (seq uint64, payload []byte, err error) {
	var hdr [recordHeaderSize]byte
	n, err := io.ReadFull(r, hdr[:])
	if err != nil {
		if n == 0 && errors.Is(err, io.EOF) {
			return 0, nil, io.EOF
		}
		return 0, nil, errTorn
	}
	seq = binary.LittleEndian.Uint64(hdr[0:8])
	length := binary.LittleEndian.Uint32(hdr[8:12])
	want := binary.LittleEndian.Uint32(hdr[12:16])
	if length > maxRecordBytes {
		return 0, nil, errTorn
	}
	payload = make([]byte, length)
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, errTorn
	}
	crc := crc32.Update(0, castagnoli, hdr[0:12])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, errTorn
	}
	return seq, payload, nil
}

// tailIsTruncatable reports whether the damage at the end of segment
// raw bytes is a genuine torn tail: no complete, checksum-valid record
// with a plausible sequence number exists at or past byte offset
// `from`. A crash tears at most the suffix of sequential writes, so a
// valid later record means fsynced history would be dropped by
// truncation — that is corruption and must fail loudly instead.
func tailIsTruncatable(raw []byte, from int64, nextSeq uint64) bool {
	if from < 0 || from >= int64(len(raw)) {
		return true
	}
	rest := raw[from:]
	maxSeq := nextSeq + uint64(len(rest)/recordHeaderSize) + 1
	for o := 0; o+recordHeaderSize <= len(rest); o++ {
		seq := binary.LittleEndian.Uint64(rest[o:])
		if seq < nextSeq || seq > maxSeq {
			continue
		}
		length := binary.LittleEndian.Uint32(rest[o+8:])
		if length > maxRecordBytes || o+recordHeaderSize+int(length) > len(rest) {
			continue
		}
		want := binary.LittleEndian.Uint32(rest[o+12:])
		crc := crc32.Update(0, castagnoli, rest[o:o+12])
		crc = crc32.Update(crc, castagnoli, rest[o+recordHeaderSize:o+recordHeaderSize+int(length)])
		if crc == want {
			return false
		}
	}
	return true
}

// AppendRecord appends one framed record — [seq][len][crc][payload] —
// to buf and returns the extended slice. Exported for the replication
// stream, which reuses the WAL record framing on the wire.
func AppendRecord(buf []byte, seq uint64, payload []byte) []byte {
	return appendRecord(buf, seq, payload)
}

// ReadRecord reads one framed record from r, returning io.EOF at a
// clean record boundary and ErrTorn for an incomplete or
// checksum-failing record. Exported for replication stream consumers.
func ReadRecord(r io.Reader) (seq uint64, payload []byte, err error) {
	return readRecord(r)
}

// appendSegmentHeader appends the segment header (magic + firstSeq).
func appendSegmentHeader(buf []byte, firstSeq uint64) []byte {
	buf = append(buf, segmentMagic...)
	var seq [8]byte
	binary.LittleEndian.PutUint64(seq[:], firstSeq)
	return append(buf, seq[:]...)
}

// readSegmentHeader reads and validates a segment header.
func readSegmentHeader(r io.Reader) (firstSeq uint64, err error) {
	var hdr [segmentHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: short segment header: %v", ErrCorrupt, err)
	}
	if string(hdr[:8]) != segmentMagic {
		return 0, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, hdr[:8])
	}
	return binary.LittleEndian.Uint64(hdr[8:16]), nil
}
