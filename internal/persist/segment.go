package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// Segment and checkpoint file naming. The zero-padded decimal version
// makes lexicographic order equal numeric order, so a directory
// listing is already the recovery plan.
const (
	segmentPrefix    = "wal-"
	segmentSuffix    = ".log"
	checkpointPrefix = "checkpoint-"
	checkpointSuffix = ".ckpt"
	tmpSuffix        = ".tmp"
)

func segmentPath(dir string, firstSeq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", segmentPrefix, firstSeq, segmentSuffix))
}

func checkpointPath(dir string, version int) string {
	return filepath.Join(dir, fmt.Sprintf("%s%020d%s", checkpointPrefix, version, checkpointSuffix))
}

// parseSeqName extracts the numeric part of a prefixed, suffixed file
// name; ok is false for foreign files.
func parseSeqName(name, prefix, suffix string) (uint64, bool) {
	if !strings.HasPrefix(name, prefix) || !strings.HasSuffix(name, suffix) {
		return 0, false
	}
	num := name[len(prefix) : len(name)-len(suffix)]
	n, err := strconv.ParseUint(num, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listStore scans dir and returns the segment first-seqs and checkpoint
// versions present, each ascending. Leftover temp files from a crash
// mid-checkpoint are removed — a rename that never happened means the
// checkpoint never existed.
func listStore(dir string) (segments []uint64, checkpoints []int, err error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, err
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			_ = os.Remove(filepath.Join(dir, name))
			continue
		}
		if seq, ok := parseSeqName(name, segmentPrefix, segmentSuffix); ok {
			segments = append(segments, seq)
			continue
		}
		if v, ok := parseSeqName(name, checkpointPrefix, checkpointSuffix); ok {
			checkpoints = append(checkpoints, int(v))
		}
	}
	sort.Slice(segments, func(i, j int) bool { return segments[i] < segments[j] })
	sort.Ints(checkpoints)
	return segments, checkpoints, nil
}

// activeSegment is the segment file currently appended to. Writes and
// truncations run under the store mutex; sync and close additionally
// hold syncMu, because a group-commit leader fsyncs outside the store
// mutex and may race a rotation closing the file it captured — the
// closed flag turns that into a no-op (rotation syncs before closing,
// so a closed segment is already durable).
type activeSegment struct {
	f        *os.File
	path     string
	firstSeq uint64
	size     int64

	syncMu sync.Mutex
	closed bool
}

// createSegment creates and headers a fresh segment whose first record
// will carry firstSeq, syncing the file and its directory so the
// rotation itself is durable.
func createSegment(dir string, firstSeq uint64, sync bool) (*activeSegment, error) {
	path := segmentPath(dir, firstSeq)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	hdr := appendSegmentHeader(nil, firstSeq)
	if _, err := f.Write(hdr); err != nil {
		f.Close()
		return nil, err
	}
	if sync {
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, err
		}
		if err := syncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &activeSegment{f: f, path: path, firstSeq: firstSeq, size: int64(len(hdr))}, nil
}

// openSegmentForAppend reopens an existing segment at the given size
// (recovery's validated end-of-log offset; anything beyond it — a torn
// tail — is truncated away first).
func openSegmentForAppend(path string, firstSeq uint64, size int64) (*activeSegment, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(size, 0); err != nil {
		f.Close()
		return nil, err
	}
	return &activeSegment{f: f, path: path, firstSeq: firstSeq, size: size}, nil
}

// write appends raw bytes to the segment.
func (s *activeSegment) write(b []byte) error {
	n, err := s.f.Write(b)
	s.size += int64(n)
	return err
}

// truncateTo rolls the segment back to a byte offset (aborting the
// records written past it) and repositions the write cursor.
func (s *activeSegment) truncateTo(size int64) error {
	if err := s.f.Truncate(size); err != nil {
		return err
	}
	if _, err := s.f.Seek(size, 0); err != nil {
		return err
	}
	s.size = size
	return nil
}

func (s *activeSegment) sync() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.closed {
		return nil
	}
	return s.f.Sync()
}

func (s *activeSegment) close() error {
	s.syncMu.Lock()
	defer s.syncMu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	return s.f.Close()
}

// syncDir fsyncs a directory so renames and creations within it are
// durable. Only "directories cannot be fsynced here" errors (EINVAL /
// ENOTSUP on exotic filesystems, permission refusals in containers)
// are ignored — a real I/O failure must surface, or an acknowledged
// segment could vanish with the directory entry on crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP) || os.IsPermission(err) {
			return nil
		}
		return err
	}
	return nil
}
