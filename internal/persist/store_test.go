package persist

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// testBase builds the two-relation database the test histories run
// over: orders is populated, archive starts empty.
func testBase() *storage.Database {
	db := storage.NewDatabase()
	orders := storage.NewRelation(schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("price", types.KindFloat),
		schema.Col("tag", types.KindString),
		schema.Col("ok", types.KindBool),
	))
	for i := 0; i < 20; i++ {
		orders.Add(schema.Tuple{
			types.Int(int64(i)),
			types.Float(float64(10 + i)),
			types.String(fmt.Sprintf("t%d", i%3)),
			types.Bool(i%2 == 0),
		})
	}
	db.AddRelation(orders)
	archive := storage.NewRelation(schema.New("archive",
		schema.Col("id", types.KindInt),
		schema.Col("price", types.KindFloat),
		schema.Col("tag", types.KindString),
		schema.Col("ok", types.KindBool),
	))
	db.AddRelation(archive)
	return db
}

// randomStatement draws a parseable statement over the test schema.
func randomStatement(rng *rand.Rand) history.Statement {
	switch rng.Intn(10) {
	case 0:
		return sql.MustParseStatement(fmt.Sprintf(
			"DELETE FROM orders WHERE id = %d AND price > 1e6", rng.Intn(50)))
	case 1:
		return sql.MustParseStatement(fmt.Sprintf(
			"INSERT INTO orders VALUES (%d, %d.5, 'it''s', true), (%d, 3.0, 'x', false)",
			100+rng.Intn(100), rng.Intn(30), 200+rng.Intn(100)))
	case 2:
		return sql.MustParseStatement(fmt.Sprintf(
			"INSERT INTO archive SELECT id, price, tag, ok FROM orders WHERE price >= %d AND id < %d",
			10+rng.Intn(20), rng.Intn(25)))
	case 3:
		return sql.MustParseStatement(fmt.Sprintf(
			"UPDATE orders SET tag = CASE WHEN id >= %d THEN 'hi' ELSE tag END WHERE ok = true", rng.Intn(20)))
	default:
		return sql.MustParseStatement(fmt.Sprintf(
			"UPDATE orders SET price = price + %d.0 WHERE id >= %d", rng.Intn(5), rng.Intn(20)))
	}
}

// mustCreate builds a fresh store under t's temp dir.
func mustCreate(t *testing.T, opts Options) (*Store, string) {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "store")
	s, err := Create(dir, testBase(), opts)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	return s, dir
}

// dbState renders a stable fingerprint of the store's current state.
func dbState(vdb *storage.VersionedDatabase) string {
	_, db := vdb.TipSnapshot()
	return db.String()
}

// historyStrings renders the log for prefix comparisons.
func historyStrings(vdb *storage.VersionedDatabase) []string {
	log := vdb.Log()
	out := make([]string, len(log))
	for i, m := range log {
		out[i] = m.String()
	}
	return out
}

func TestCreateAppendReopen(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	rng := rand.New(rand.NewSource(7))
	ctx := context.Background()
	var committed []string
	for i := 0; i < 40; i++ {
		st := randomStatement(rng)
		if _, err := s.Append(ctx, []history.Statement{st}); err != nil {
			t.Fatalf("append %d (%s): %v", i, st, err)
		}
		committed = append(committed, st.String())
	}
	wantState := dbState(s.Database())
	wantVersion := s.Version()
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if got := re.Version(); got != wantVersion {
		t.Fatalf("recovered version %d, want %d", got, wantVersion)
	}
	if got := dbState(re.Database()); got != wantState {
		t.Fatalf("recovered state differs:\n%s\nwant:\n%s", got, wantState)
	}
	got := historyStrings(re.Database())
	if len(got) != len(committed) {
		t.Fatalf("recovered %d statements, want %d", len(got), len(committed))
	}
	for i := range got {
		if got[i] != committed[i] {
			t.Fatalf("statement %d = %q, want %q", i, got[i], committed[i])
		}
	}
	info := re.RecoveryInfo()
	if info.Statements != wantVersion || info.TruncatedRecords != 0 {
		t.Fatalf("unexpected recovery info: %+v", info)
	}
	// The recovered store keeps working.
	if _, err := re.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
		t.Fatalf("append after recovery: %v", err)
	}
}

func TestStatementRoundTrip(t *testing.T) {
	// Programmatic statements exercising every value kind, including
	// the renderings that used to be lossy: integral floats (2 vs 2.0),
	// exponent floats, quoted strings, NULL.
	stmts := []history.Statement{
		&history.InsertValues{Rel: "orders", Rows: []schema.Tuple{
			{types.Int(-5), types.Float(2), types.String("a'b"), types.Bool(false)},
			{types.Int(7), types.Float(1e30), types.Null(), types.Bool(true)},
		}},
		sql.MustParseStatement("UPDATE orders SET price = 2.0, ok = false WHERE tag = 'it''s' OR price <= -1.5"),
		sql.MustParseStatement("DELETE FROM orders WHERE price IS NULL OR NOT ok = true"),
		sql.MustParseStatement("INSERT INTO archive SELECT id, price + 1.0 AS price, tag, ok FROM orders WHERE id >= 3"),
		sql.MustParseStatement("INSERT INTO archive SELECT * FROM archive WHERE id < 2 UNION ALL SELECT id, price, tag, ok FROM orders WHERE id = 1"),
		sql.MustParseStatement("INSERT INTO archive (SELECT * FROM orders WHERE ok = true)"),
	}
	for i, st := range stmts {
		payload, err := EncodeStatement(st)
		if err != nil {
			t.Fatalf("statement %d (%s): %v", i, st, err)
		}
		back, err := sql.ParseStatement(string(payload))
		if err != nil {
			t.Fatalf("statement %d: reparse %q: %v", i, payload, err)
		}
		// Applying the original and the round-tripped statement to the
		// same state must agree exactly.
		a, b := testBase(), testBase()
		errA, errB := st.Apply(a), back.Apply(b)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("statement %d: apply error mismatch: %v vs %v", i, errA, errB)
		}
		if a.String() != b.String() {
			t.Fatalf("statement %d (%s): state diverged after round trip through %q", i, st, payload)
		}
	}
}

func TestEncodeRejectsNonSQLStatements(t *testing.T) {
	sing := &algebra.Singleton{
		Sch:    schema.New("x", schema.Col("a", types.KindInt)),
		Tuples: []schema.Tuple{{types.Int(1)}},
	}
	st := &history.InsertQuery{Rel: "orders", Query: sing}
	if _, err := EncodeStatement(st); err == nil {
		t.Fatalf("EncodeStatement accepted a query with no SQL form")
	}
	s, _ := mustCreate(t, Options{})
	defer s.Close()
	v0 := s.Version()
	if _, err := s.Append(context.Background(), []history.Statement{st}); err == nil {
		t.Fatalf("Append accepted an unencodable statement")
	}
	if s.Version() != v0 {
		t.Fatalf("version advanced past a rejected statement")
	}
}

func TestSegmentRotation(t *testing.T) {
	s, dir := mustCreate(t, Options{SegmentBytes: 256})
	rng := rand.New(rand.NewSource(3))
	ctx := context.Background()
	for i := 0; i < 30; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	if st := s.Stats(); st.Segments < 3 || st.Rotations < 2 {
		t.Fatalf("expected rotations with 256-byte segments, got %+v", st)
	}
	want := dbState(s.Database())
	s.Close()
	re, err := Open(dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if got := dbState(re.Database()); got != want {
		t.Fatalf("multi-segment recovery diverged")
	}
	if re.RecoveryInfo().Segments < 3 {
		t.Fatalf("recovery saw %d segments", re.RecoveryInfo().Segments)
	}
}

func TestCheckpointBoundsReplay(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	rng := rand.New(rand.NewSource(11))
	ctx := context.Background()
	for i := 0; i < 25; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	info, err := s.Checkpoint()
	if err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if info.Version != 25 || info.Bytes == 0 {
		t.Fatalf("checkpoint info %+v", info)
	}
	for i := 0; i < 10; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	want := dbState(s.Database())
	s.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	ri := re.RecoveryInfo()
	if ri.CheckpointVersion != 25 || ri.ReplayedStatements != 10 || ri.Statements != 35 {
		t.Fatalf("recovery did not start from the checkpoint: %+v", ri)
	}
	if got := dbState(re.Database()); got != want {
		t.Fatalf("checkpointed recovery diverged")
	}
	// Time travel below the checkpoint still works (the base is kept).
	if _, err := re.Database().Version(3); err != nil {
		t.Fatalf("time travel below checkpoint: %v", err)
	}
}

func TestAutoCheckpointAndPruning(t *testing.T) {
	s, dir := mustCreate(t, Options{CheckpointEvery: 10, RetainCheckpoints: 2})
	rng := rand.New(rand.NewSource(5))
	ctx := context.Background()
	for i := 0; i < 55; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatalf("append: %v", err)
		}
	}
	st := s.Stats()
	if st.CheckpointsWritten < 5 || st.LastCheckpointVersion < 50 {
		t.Fatalf("auto checkpoints missing: %+v", st)
	}
	s.Close()
	_, ckpts, err := listStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if ckpts[0] != 0 {
		t.Fatalf("base checkpoint pruned: %v", ckpts)
	}
	if n := len(ckpts) - 1; n > 2 {
		t.Fatalf("retention kept %d non-base checkpoints: %v", n, ckpts)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open after pruning: %v", err)
	}
	re.Close()
}

func TestAppendApplyFailureRollsBack(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	ctx := context.Background()
	good := sql.MustParseStatement("UPDATE orders SET price = 1.0 WHERE id = 1")
	if _, err := s.Append(ctx, []history.Statement{good}); err != nil {
		t.Fatalf("append: %v", err)
	}
	// Parseable but unappliable: the relation does not exist.
	bad := sql.MustParseStatement("UPDATE nosuch SET a = 1 WHERE a = 2")
	v, err := s.Append(ctx, []history.Statement{bad})
	if err == nil {
		t.Fatalf("append of unappliable statement succeeded")
	}
	if v != 1 || s.Version() != 1 {
		t.Fatalf("version %d after failed append, want 1", v)
	}
	// Batch: first succeeds and stays committed, second aborts.
	v, err = s.Append(ctx, []history.Statement{
		sql.MustParseStatement("UPDATE orders SET price = 2.0 WHERE id = 2"),
		bad,
	})
	if err == nil || v != 2 {
		t.Fatalf("partial batch: version %d err %v", v, err)
	}
	want := dbState(s.Database())
	s.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer re.Close()
	if re.Version() != 2 {
		t.Fatalf("recovered version %d, want 2 (failed statements rolled back)", re.Version())
	}
	if got := dbState(re.Database()); got != want {
		t.Fatalf("state diverged after rollback recovery")
	}
}

func TestDetectAndCreateGuards(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	if Detect(dir) {
		t.Fatalf("Detect on missing dir")
	}
	s, err := Create(dir, testBase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if !Detect(dir) {
		t.Fatalf("Detect missed a store")
	}
	if _, err := Create(dir, testBase(), Options{}); err == nil {
		t.Fatalf("Create over an existing store succeeded")
	}
}

func TestEmptyTrailingSegmentRecovers(t *testing.T) {
	// Tiny segments force a rotation after nearly every append, so the
	// store regularly sits with a freshly created, still-empty active
	// segment — the state a crash right after rotation leaves behind.
	s, dir := mustCreate(t, Options{SegmentBytes: 1})
	ctx := context.Background()
	if _, err := s.Append(ctx, []history.Statement{sql.MustParseStatement("UPDATE orders SET price = 1.0 WHERE id = 1")}); err != nil {
		t.Fatal(err)
	}
	want := dbState(s.Database())
	s.Close()
	segs, _, err := listStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("expected an empty rotated segment, got %v", segs)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("Open with empty trailing segment: %v", err)
	}
	defer re.Close()
	if re.Version() != 1 || dbState(re.Database()) != want {
		t.Fatalf("empty-segment recovery diverged")
	}
	if _, err := re.Append(ctx, []history.Statement{sql.MustParseStatement("UPDATE orders SET price = 3.0 WHERE id = 1")}); err != nil {
		t.Fatalf("append into recovered empty segment: %v", err)
	}
}

func TestOpenMissingBaseCheckpoint(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	s.Close()
	if err := os.Remove(checkpointPath(dir, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil || !strings.Contains(err.Error(), "base checkpoint") {
		t.Fatalf("Open without base checkpoint: %v", err)
	}
}

func TestRemoveStoreRollsBackInit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "s")
	s, err := Create(dir, testBase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(context.Background(), []history.Statement{
		sql.MustParseStatement("UPDATE orders SET price = 1.0 WHERE id = 1"),
	}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := RemoveStore(dir); err != nil {
		t.Fatal(err)
	}
	if Detect(dir) {
		t.Fatalf("store files survived RemoveStore")
	}
	// The directory is re-initializable.
	s2, err := Create(dir, testBase(), Options{})
	if err != nil {
		t.Fatalf("re-init after RemoveStore: %v", err)
	}
	s2.Close()
}

func TestLoadCheckpointCorruptLengthField(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	s.Close()
	path := checkpointPath(dir, 0)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the 8-byte payload-length field to a huge value: the sum
	// header+plen+4 wraps in uint64, which must degrade to ErrCorrupt,
	// not a negative slice bound.
	for i := 20; i < 28; i++ {
		raw[i] = 0xff
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := loadCheckpoint(path); err == nil {
		t.Fatalf("corrupt length field accepted")
	} else if !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("unexpected error: %v", err)
	}
}
