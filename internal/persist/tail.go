package persist

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// TailReader streams committed WAL records from a live Store, in seq
// order, concurrently with appends. It is the leader-side source of
// the replication stream: Next returns the next committed record,
// blocking until one is appended.
//
// Correctness under concurrent writes rests on the commit boundary:
// every read is positional (ReadAt, no buffered prefetch) and bounded
// by the store's committed byte offset captured atomically with the
// version, so the reader can never observe the bytes of an uncommitted
// record — not even one that a failed apply later rolls back and
// overwrites with a different statement at the same offset. Rotated
// segments are immutable and read to their end; the next segment's
// first seq is exactly the following record (strict seq continuity),
// so crossing a rotation boundary is a deterministic file switch.
//
// A TailReader is not safe for concurrent use; open one per stream.
type TailReader struct {
	s       *Store
	nextSeq uint64
	f       *os.File
	segSeq  uint64 // first seq of the open segment
	off     int64  // read offset within it
	endSeq  uint64 // first seq of the successor segment, 0 until resolved
}

// TailFrom opens a reader positioned at record seq `from` (clamped to
// 1; at most one past the committed tip, where the reader waits for
// the next append).
func (s *Store) TailFrom(from uint64) (*TailReader, error) {
	if from == 0 {
		from = 1
	}
	version, _, _ := s.commitPos()
	if from > uint64(version)+1 {
		return nil, fmt.Errorf("persist: tail from seq %d is beyond the next seq %d", from, version+1)
	}
	segs, _, err := listStore(s.dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		return nil, fmt.Errorf("persist: %s holds no WAL segments", s.dir)
	}
	// The containing segment is the last one starting at or before
	// `from` (segs is ascending).
	segSeq := segs[0]
	for _, fs := range segs {
		if fs <= from {
			segSeq = fs
		}
	}
	t := &TailReader{s: s, nextSeq: segSeq}
	if err := t.openSegment(segSeq); err != nil {
		return nil, err
	}
	// Skip forward to `from`. Everything below it is committed (from is
	// at most version+1), so these are plain bounded reads.
	for t.nextSeq < from {
		if _, _, err := t.readCommitted(); err != nil {
			t.Close()
			return nil, err
		}
	}
	return t, nil
}

// Next returns the next committed record, blocking until the store
// commits it, ctx ends, or the store closes.
func (t *TailReader) Next(ctx context.Context) (seq uint64, payload []byte, err error) {
	if err := t.s.WaitVersion(ctx, int(t.nextSeq)); err != nil {
		return 0, nil, err
	}
	return t.readCommitted()
}

// NextSeq returns the seq the next Next call will deliver.
func (t *TailReader) NextSeq() uint64 { return t.nextSeq }

// Close releases the reader's file handle.
func (t *TailReader) Close() error {
	if t.f == nil {
		return nil
	}
	err := t.f.Close()
	t.f = nil
	return err
}

// openSegment switches the reader to the segment starting at firstSeq,
// positioned after the header.
func (t *TailReader) openSegment(firstSeq uint64) error {
	f, err := os.Open(segmentPath(t.s.dir, firstSeq))
	if err != nil {
		return err
	}
	hdrSeq, err := readSegmentHeader(f)
	if err != nil {
		f.Close()
		return err
	}
	if hdrSeq != firstSeq {
		f.Close()
		return fmt.Errorf("%w: segment %d header claims first seq %d", ErrCorrupt, firstSeq, hdrSeq)
	}
	if t.f != nil {
		t.f.Close()
	}
	t.f = f
	t.segSeq = firstSeq
	t.off = segmentHeaderSize
	t.endSeq = 0
	return nil
}

// readCommitted reads the record for t.nextSeq, which the caller
// guarantees is committed. All reads stay below the commit boundary.
func (t *TailReader) readCommitted() (uint64, []byte, error) {
	version, commitSeg, commitOff := t.s.commitPos()
	if t.nextSeq > uint64(version) {
		return 0, nil, fmt.Errorf("persist: record %d is not committed yet (version %d)", t.nextSeq, version)
	}
	// The read bound: the committed offset in the commit segment, the
	// (immutable) file size in any earlier, rotated segment. Advancing
	// across a rotation is seq-driven, not size-driven: strict seq
	// continuity puts a rotated segment's successor at the seq right
	// after its last record, so the switch happens exactly when nextSeq
	// reaches the successor's first seq — a trailing torn write past the
	// rotated segment's last record (crash artifact) is never read.
	bound := commitOff
	if t.segSeq != commitSeg {
		if t.endSeq == 0 {
			end, err := t.successorSeq()
			if err != nil {
				return 0, nil, err
			}
			t.endSeq = end
		}
		if t.nextSeq >= t.endSeq {
			if err := t.openSegment(t.nextSeq); err != nil {
				return 0, nil, err
			}
			return t.readCommitted()
		}
		fi, err := t.f.Stat()
		if err != nil {
			return 0, nil, err
		}
		bound = fi.Size()
	} else if t.off >= bound {
		return 0, nil, fmt.Errorf("%w: committed record %d missing at the commit boundary of segment %d", ErrCorrupt, t.nextSeq, t.segSeq)
	}
	var hdr [recordHeaderSize]byte
	if t.off+recordHeaderSize > bound {
		return 0, nil, fmt.Errorf("%w: record %d header crosses the commit boundary", ErrCorrupt, t.nextSeq)
	}
	if _, err := t.f.ReadAt(hdr[:], t.off); err != nil {
		return 0, nil, err
	}
	seq := binary.LittleEndian.Uint64(hdr[0:8])
	length := binary.LittleEndian.Uint32(hdr[8:12])
	want := binary.LittleEndian.Uint32(hdr[12:16])
	if seq != t.nextSeq {
		return 0, nil, fmt.Errorf("%w: segment %d: record seq %d, want %d", ErrCorrupt, t.segSeq, seq, t.nextSeq)
	}
	if length > maxRecordBytes || t.off+recordSize(int(length)) > bound {
		return 0, nil, fmt.Errorf("%w: record %d crosses the commit boundary", ErrCorrupt, t.nextSeq)
	}
	payload := make([]byte, length)
	if _, err := t.f.ReadAt(payload, t.off+recordHeaderSize); err != nil {
		return 0, nil, err
	}
	crc := crc32.Update(0, castagnoli, hdr[0:12])
	crc = crc32.Update(crc, castagnoli, payload)
	if crc != want {
		return 0, nil, fmt.Errorf("%w: record %d checksum mismatch", ErrCorrupt, t.nextSeq)
	}
	t.off += recordSize(int(length))
	t.nextSeq++
	return seq, payload, nil
}

// successorSeq returns the first seq of the segment following t.segSeq.
// Only called on a rotated segment, whose successor necessarily exists
// (rotation creates it before retiring the old one).
func (t *TailReader) successorSeq() (uint64, error) {
	segs, _, err := listStore(t.s.dir)
	if err != nil {
		return 0, err
	}
	for _, fs := range segs {
		if fs > t.segSeq {
			return fs, nil
		}
	}
	return 0, fmt.Errorf("%w: rotated segment %d has no successor", ErrCorrupt, t.segSeq)
}
