package persist

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
)

// copyDir clones a store directory — the moral equivalent of the page
// cache surviving a kill -9.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// replayPrefix applies the first n committed statements over a fresh
// base and renders the resulting state.
func replayPrefix(t *testing.T, stmts []history.Statement, n int) string {
	t.Helper()
	vdb := storage.NewVersioned(testBase())
	for _, st := range stmts[:n] {
		// Re-encode and re-parse so the replay uses the same AST
		// recovery would.
		text, err := sql.RenderStatement(st)
		if err != nil {
			t.Fatalf("committed statement %q unrenderable: %v", st, err)
		}
		back, err := sql.ParseStatement(text)
		if err != nil {
			t.Fatalf("committed statement %q unparseable: %v", text, err)
		}
		if err := vdb.Apply(back); err != nil {
			t.Fatalf("replaying %q: %v", st, err)
		}
	}
	return dbState(vdb)
}

// TestRecoveryPrefixUnderRandomKill is the crash-safety property: for
// random damage at the tail of the log — truncation at an arbitrary
// byte offset (a torn write), bit flips inside the final record, a
// corrupted or deleted checkpoint, a leftover checkpoint temp file —
// recovery must yield a store whose history is an exact prefix of the
// committed history, whose state equals replaying that prefix, and
// which accepts further appends.
func TestRecoveryPrefixUnderRandomKill(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 60
	if testing.Short() {
		trials = 15
	}

	// Build the committed store once: mixed statements, small segments
	// (so damage lands in different segments across trials), periodic
	// checkpoints.
	s, dir := mustCreate(t, Options{SegmentBytes: 512, CheckpointEvery: 13})
	ctx := context.Background()
	var committed []history.Statement
	for i := 0; i < 40; i++ {
		st := randomStatement(rng)
		if _, err := s.Append(ctx, []history.Statement{st}); err != nil {
			t.Fatalf("append: %v", err)
		}
		committed = append(committed, st)
	}
	s.Close()

	for trial := 0; trial < trials; trial++ {
		work := copyDir(t, dir)
		segs, ckpts, err := listStore(work)
		if err != nil {
			t.Fatal(err)
		}
		lastSeg := segmentPath(work, segs[len(segs)-1])
		switch trial % 4 {
		case 0: // torn write: truncate the last segment anywhere
			fi, err := os.Stat(lastSeg)
			if err != nil {
				t.Fatal(err)
			}
			cut := rng.Int63n(fi.Size() + 1)
			if cut < segmentHeaderSize {
				cut = segmentHeaderSize
			}
			if err := os.Truncate(lastSeg, cut); err != nil {
				t.Fatal(err)
			}
		case 1: // bit flips inside the final record
			raw, err := os.ReadFile(lastSeg)
			if err != nil {
				t.Fatal(err)
			}
			if len(raw) > segmentHeaderSize {
				for k := 0; k < 1+rng.Intn(3); k++ {
					tail := len(raw) - 1 - rng.Intn(minInt(40, len(raw)-segmentHeaderSize))
					raw[tail] ^= byte(1 << rng.Intn(8))
				}
				if err := os.WriteFile(lastSeg, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // mid-checkpoint crash: stray tmp + corrupt newest checkpoint
			if err := os.WriteFile(filepath.Join(work, "checkpoint-99.ckpt.tmp"), []byte("partial"), 0o644); err != nil {
				t.Fatal(err)
			}
			newest := ckpts[len(ckpts)-1]
			if newest > 0 {
				path := checkpointPath(work, newest)
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)/2] ^= 0xff
				if err := os.WriteFile(path, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			}
		case 3: // deleted checkpoint + torn tail together
			newest := ckpts[len(ckpts)-1]
			if newest > 0 {
				if err := os.Remove(checkpointPath(work, newest)); err != nil {
					t.Fatal(err)
				}
			}
			fi, err := os.Stat(lastSeg)
			if err != nil {
				t.Fatal(err)
			}
			if fi.Size() > segmentHeaderSize {
				cut := segmentHeaderSize + rng.Int63n(fi.Size()-segmentHeaderSize+1)
				if err := os.Truncate(lastSeg, cut); err != nil {
					t.Fatal(err)
				}
			}
		}

		re, err := Open(work, Options{SegmentBytes: 512})
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		got := historyStrings(re.Database())
		if len(got) > len(committed) {
			t.Fatalf("trial %d: recovered %d statements, committed only %d", trial, len(got), len(committed))
		}
		// In the tail-damage trials everything before the last segment
		// is intact, so at most that segment's statements may be lost.
		minKeep := 0
		if n := len(segs); n > 0 {
			minKeep = int(segs[len(segs)-1]) - 1
		}
		if trial%4 == 2 { // checkpoint damage only: nothing may be lost
			minKeep = len(committed)
		}
		if len(got) < minKeep {
			t.Fatalf("trial %d: recovered %d statements, damage could only reach back to %d", trial, len(got), minKeep)
		}
		for i := range got {
			if got[i] != committed[i].String() {
				t.Fatalf("trial %d: statement %d = %q, want %q (not a prefix)", trial, i, got[i], committed[i])
			}
		}
		if want := replayPrefix(t, committed, len(got)); dbState(re.Database()) != want {
			t.Fatalf("trial %d: recovered state does not match replay of its %d-statement prefix", trial, len(got))
		}
		// Post-recovery the store must be writable and re-recoverable.
		if _, err := re.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		after := dbState(re.Database())
		ver := re.Version()
		re.Close()
		re2, err := Open(work, Options{})
		if err != nil {
			t.Fatalf("trial %d: second recovery: %v", trial, err)
		}
		if re2.Version() != ver || dbState(re2.Database()) != after {
			t.Fatalf("trial %d: second recovery diverged", trial)
		}
		re2.Close()
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestRecoveryRejectsMidSegmentCorruption: a damaged record in the
// LAST segment that is followed by valid records is not a torn tail —
// truncating there would drop fsynced history, so recovery must fail
// loudly instead.
func TestRecoveryRejectsMidSegmentCorruption(t *testing.T) {
	s, dir := mustCreate(t, Options{}) // one big segment, no rotation
	ctx := context.Background()
	rng := rand.New(rand.NewSource(33))
	for i := 0; i < 10; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _, err := listStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, segs[0])
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Flip a byte early in the segment body: the first record's CRC
	// breaks while later records stay valid.
	raw[segmentHeaderSize+recordHeaderSize+3] ^= 0x20
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("recovery silently truncated fsynced records after mid-segment damage")
	}
}

// TestRecoveryDropsAheadCheckpointFromStats: a checkpoint ahead of the
// (torn) log is dropped, and the surviving LastCheckpointVersion must
// reflect disk, not the dropped file — the auto-checkpoint cadence
// keys off it.
func TestRecoveryDropsAheadCheckpointFromStats(t *testing.T) {
	s, dir := mustCreate(t, Options{})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(44))
	for i := 0; i < 6; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Checkpoint(); err != nil { // checkpoint@6
		t.Fatal(err)
	}
	s.Close()
	// Tear the log back below the checkpoint.
	segs, _, err := listStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := segmentPath(dir, segs[len(segs)-1])
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery after tear below checkpoint: %v", err)
	}
	defer re.Close()
	st := re.Stats()
	if st.LastCheckpointVersion > re.Version() {
		t.Fatalf("LastCheckpointVersion %d reports a dropped checkpoint (version %d)",
			st.LastCheckpointVersion, re.Version())
	}
	if Detect(dir) && st.LastCheckpointVersion != 0 {
		t.Fatalf("only the base survives here, got LastCheckpointVersion=%d", st.LastCheckpointVersion)
	}
}

// TestRecoveryRejectsMidLogCorruption: damage before the tail is not a
// crash signature — it must fail loudly, never silently drop committed
// middle statements.
func TestRecoveryRejectsMidLogCorruption(t *testing.T) {
	s, dir := mustCreate(t, Options{SegmentBytes: 256})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 30; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _, err := listStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("need ≥3 segments, got %d", len(segs))
	}
	// Corrupt a record in the middle of the FIRST segment.
	first := segmentPath(dir, segs[0])
	raw, err := os.ReadFile(first)
	if err != nil {
		t.Fatal(err)
	}
	raw[segmentHeaderSize+recordHeaderSize+2] ^= 0x01
	if err := os.WriteFile(first, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatalf("recovery accepted mid-log corruption")
	}
}

// TestGoldenRestartWhatIf pins the acceptance criterion at the engine
// level: the JSON-rendered answer of a what-if query is byte-identical
// before close and after crash recovery.
func TestGoldenRestartWhatIf(t *testing.T) {
	s, dir := mustCreate(t, Options{CheckpointEvery: 7})
	ctx := context.Background()
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
			t.Fatal(err)
		}
	}
	mods := []history.Modification{history.Replace{
		Pos:  2,
		Stmt: sql.MustParseStatement("UPDATE orders SET price = price + 100.0 WHERE id >= 4"),
	}}
	answer := func(e *core.Engine) string {
		d, _, err := e.WhatIfCtx(ctx, mods, core.DefaultOptions())
		if err != nil {
			t.Fatalf("whatif: %v", err)
		}
		raw, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		return string(raw)
	}
	before := answer(core.New(s.Database()))
	naiveBefore, _, err := core.New(s.Database()).NaiveCtx(ctx, mods)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()

	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	after := answer(core.New(re.Database()))
	if before != after {
		t.Fatalf("what-if answer changed across restart:\nbefore: %s\nafter:  %s", before, after)
	}
	naiveAfter, _, err := core.New(re.Database()).NaiveCtx(ctx, mods)
	if err != nil {
		t.Fatal(err)
	}
	rawB, _ := json.Marshal(naiveBefore)
	rawA, _ := json.Marshal(naiveAfter)
	if string(rawB) != string(rawA) {
		t.Fatalf("naive answer changed across restart")
	}
}

// TestRecoveryColdVsCheckpointed sanity-checks that checkpoints
// actually bound replay (the bench measures the magnitude).
func TestRecoveryColdVsCheckpointed(t *testing.T) {
	build := func(every int) (string, func()) {
		dir := filepath.Join(t.TempDir(), fmt.Sprintf("s%d", every))
		s, err := Create(dir, testBase(), Options{CheckpointEvery: every})
		if err != nil {
			t.Fatal(err)
		}
		ctx := context.Background()
		rng := rand.New(rand.NewSource(8))
		for i := 0; i < 30; i++ {
			if _, err := s.Append(ctx, []history.Statement{randomStatement(rng)}); err != nil {
				t.Fatal(err)
			}
		}
		s.Close()
		return dir, func() {}
	}
	cold, _ := build(0)
	warm, _ := build(10)
	rc, err := Open(cold, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	rw, err := Open(warm, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer rw.Close()
	if rc.RecoveryInfo().ReplayedStatements != 30 {
		t.Fatalf("cold recovery replayed %d", rc.RecoveryInfo().ReplayedStatements)
	}
	if rw.RecoveryInfo().ReplayedStatements >= 30 || rw.RecoveryInfo().CheckpointVersion == 0 {
		t.Fatalf("checkpointed recovery did not use its checkpoint: %+v", rw.RecoveryInfo())
	}
	if dbState(rc.Database()) != dbState(rw.Database()) {
		t.Fatalf("cold and checkpointed recovery disagree")
	}
}
