// Indexed incremental statement application: UPDATE and DELETE select
// their candidate rows through the per-column secondary indexes of a
// storage.IndexSet and touch only those rows in place, and both insert
// flavors append with delta-wise index maintenance — O(affected rows)
// per statement instead of a full scan plus rematerialization of the
// relation. This is the apply path behind storage.ApplyMutator, used
// for the versioned store's tip and for replay-private index sets.
//
// Correctness is anchored to the naive loops' left-to-right And
// evaluation with short-circuit on false only (expr.evalAndOr):
// a row may be skipped without evaluating its predicate if and only if
// some conjunct is certainly false on it AND every earlier conjunct is
// certainly error-free on it. The planner therefore only lets a
// conjunct drive an index when every preceding conjunct is "total":
// an equality (Eq/Ne never error), or an ordered comparison whose
// column provably holds a single comparability class matching the
// constant (certified by the column index itself). Rows whose indexed
// column is NULL never short-circuit the conjunction (NULL is not
// false), so they stay candidates and take the residual predicate,
// which evaluates the full WHERE with the executor's compiled
// tuple-at-a-time closures — the exact expr.Satisfied semantics.
// DELETE's asymmetry is preserved: a condition evaluating to NULL
// removes the tuple (σ_{¬θ} keeps only ¬θ = true), so even exact
// delete plans remove the NULL positions alongside the key interval.
// Statements outside the indexable subset fall back to the compiled /
// naive full application and invalidate the relation's indexes, so
// routing changes speed, never observable behavior — pinned by the
// every-version differential property tests.
package history

import (
	"fmt"
	"math/bits"
	"strings"

	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// conjunct classification ----------------------------------------------------

type conjKind uint8

const (
	ckSimple conjKind = iota // col ∘ const with a non-NULL constant
	ckFalse                  // constant false: the conjunction is false
	ckOpaque                 // anything else; ends the certified prefix
)

type conjunct struct {
	kind conjKind
	col  int        // ordinal (ckSimple)
	op   expr.CmpOp // ckSimple
	k    types.Value
}

// applyAnalysis is the schema-keyed, index-independent half of an
// indexed apply plan: the flattened conjuncts of the WHERE clause in
// evaluation order plus the compiled residual closures. nil analysis
// (cached as such) means the statement is outside the indexable subset.
type applyAnalysis struct {
	conj []conjunct
	// pred is the compiled full θ (UPDATE residual); keep is the
	// compiled ¬θ (DELETE residual: a candidate survives iff true).
	pred exec.RowPred
	keep exec.RowPred
	// setCols/setFns are the non-identity SET targets in column order.
	setCols []int
	setFns  []exec.RowScalar
	// seqSafe: no SET expression reads a column an earlier SET clause
	// writes, so evaluating the closures over a tuple being rewritten
	// column-by-column still sees only original values — the condition
	// for the single-pass in-place commit.
	seqSafe bool
}

// flattenAnd appends the conjuncts of e in evaluation order: And trees
// evaluate left subtree first, and once any conjunct is false all
// later ones are skipped, so the flattened sequence under sequential
// short-circuit-on-false reproduces the nested semantics exactly.
func flattenAnd(e expr.Expr, out []expr.Expr) []expr.Expr {
	if a, ok := e.(*expr.And); ok {
		out = flattenAnd(a.L, out)
		return flattenAnd(a.R, out)
	}
	return append(out, e)
}

// classifyConjunct maps one conjunct to its planner classification.
// ok=false rejects the whole statement from the indexed subset.
func classifyConjunct(e expr.Expr, s *schema.Schema) (conjunct, bool) {
	switch x := e.(type) {
	case *expr.Const:
		if x.V.IsTrue() {
			// Neutral conjunct; the caller drops it.
			return conjunct{kind: ckOpaque, col: -1}, false
		}
		if !x.V.IsNull() && x.V.Kind() == types.KindBool && !x.V.AsBool() {
			return conjunct{kind: ckFalse}, true
		}
		// A NULL or non-boolean constant conjunct: NULL never
		// short-circuits (DELETE would remove every row), non-boolean
		// errors row-wise. Leave both to the reference loops.
		return conjunct{}, false
	case *expr.Cmp:
		col, k, op, ok := simpleCmp(x)
		if !ok {
			return conjunct{kind: ckOpaque, col: -1}, true
		}
		if k.IsNull() {
			// col ∘ NULL evaluates NULL on every row: harmless for
			// UPDATE but it removes every row under DELETE's σ_{¬θ};
			// no index can express that, so fall back.
			return conjunct{}, false
		}
		ord := s.ColIndex(col)
		if ord < 0 {
			return conjunct{}, false
		}
		return conjunct{kind: ckSimple, col: ord, op: op, k: k}, true
	}
	return conjunct{kind: ckOpaque, col: -1}, true
}

// simpleCmp recognizes col ∘ const (either operand order).
func simpleCmp(c *expr.Cmp) (col string, k types.Value, op expr.CmpOp, ok bool) {
	if l, lok := c.L.(*expr.Col); lok {
		if r, rok := c.R.(*expr.Const); rok {
			return l.Name, r.V, c.Op, true
		}
	}
	if l, lok := c.L.(*expr.Const); lok {
		if r, rok := c.R.(*expr.Col); rok {
			return r.Name, l.V, c.Op.Flip(), true
		}
	}
	return "", types.Value{}, 0, false
}

// analyzeConjuncts flattens and classifies a WHERE clause; nil means
// the statement must take the reference loops.
func analyzeConjuncts(where expr.Expr, s *schema.Schema) []conjunct {
	flat := flattenAnd(where, nil)
	out := make([]conjunct, 0, len(flat))
	for _, e := range flat {
		if c, ok := e.(*expr.Const); ok && c.V.IsTrue() {
			continue // neutral
		}
		c, ok := classifyConjunct(e, s)
		if !ok {
			if c.kind == ckFalse {
				out = append(out, c)
				continue
			}
			return nil
		}
		out = append(out, c)
	}
	return out
}

// analyzeUpdate builds the analysis of an UPDATE (vec is the dense SET
// vector; identity columns are skipped exactly as the compiled path
// skips them).
func analyzeUpdate(where expr.Expr, vec []expr.Expr, s *schema.Schema) *applyAnalysis {
	conj := analyzeConjuncts(where, s)
	if conj == nil {
		return nil
	}
	pred, err := exec.CompileRowPred(where, s)
	if err != nil {
		return nil
	}
	a := &applyAnalysis{conj: conj, pred: pred, seqSafe: true}
	written := map[string]bool{}
	for i, c := range s.Columns {
		if col, ok := vec[i].(*expr.Col); ok && strings.EqualFold(col.Name, c.Name) {
			continue
		}
		for name := range expr.Cols(vec[i]) {
			if written[strings.ToLower(name)] {
				a.seqSafe = false
			}
		}
		fn, err := exec.CompileRowScalar(vec[i], s)
		if err != nil {
			return nil
		}
		a.setCols = append(a.setCols, i)
		a.setFns = append(a.setFns, fn)
		written[strings.ToLower(c.Name)] = true
	}
	return a
}

// analyzeDelete builds the analysis of a DELETE.
func analyzeDelete(where expr.Expr, s *schema.Schema) *applyAnalysis {
	conj := analyzeConjuncts(where, s)
	if conj == nil {
		return nil
	}
	keep, err := exec.CompileRowPred(expr.Negation(where), s)
	if err != nil {
		return nil
	}
	return &applyAnalysis{conj: conj, keep: keep}
}

// binding --------------------------------------------------------------------

// boundPlan is the index-dependent half of a plan, valid for one
// IndexSet at one availability epoch (the memo guards on both).
type boundPlan struct {
	empty  bool // θ is certainly false on every row (constant false conjunct)
	colOrd int
	idx    *storage.ColumnIndex
	// direct: every conjunct is a certified constraint — the residual
	// reduces to value-level checks of the non-chosen constraints (res),
	// with no compiled predicate and no possibility of evaluation error.
	// exact is the single-column case of direct: the probe interval IS
	// the satisfying set and res is empty.
	direct bool
	exact  bool
	res    []resCheck
	eq     *types.Value
	lo, hi *storage.Bound
	// noteReplace is false when no built index sits on a SET column:
	// rewrites then copy every indexed value verbatim and per-row
	// replace maintenance is provably a no-op, so the commit loop skips
	// it (the epoch guard re-proves this whenever availability moves).
	noteReplace bool
}

// resCheck is one non-chosen certified constraint of a direct plan,
// checked value-wise per candidate row. Certification guarantees the
// check is total: equality never errors, and range comparisons only
// arise when the row's class (maintained by the column index) matches
// the constant's.
type resCheck struct {
	ord    int
	eq     *types.Value
	lo, hi *storage.Bound
}

// satisfies reports whether the non-NULL value v satisfies the
// constraint (the caller handles NULL per statement kind).
func (rc *resCheck) satisfies(v types.Value) bool {
	if rc.eq != nil {
		return v.Equal(*rc.eq)
	}
	if rc.lo != nil {
		c, err := v.Compare(rc.lo.V)
		if err != nil || c < 0 || (c == 0 && rc.lo.Open) {
			return false
		}
	}
	if rc.hi != nil {
		c, err := v.Compare(rc.hi.V)
		if err != nil || c > 0 || (c == 0 && rc.hi.Open) {
			return false
		}
	}
	return true
}

// colConstraint accumulates the certified constraints on one column.
type colConstraint struct {
	col    int
	idx    *storage.ColumnIndex
	eq     *types.Value
	lo, hi *storage.Bound
	empty  bool
}

// tightenEq intersects an equality into the constraint.
func (cc *colConstraint) tightenEq(k types.Value) {
	if cc.eq != nil {
		if !cc.eq.Equal(k) {
			cc.empty = true
		}
		return
	}
	cc.eq = &k
}

// tightenRange intersects one ordered bound into the constraint.
func (cc *colConstraint) tightenRange(op expr.CmpOp, k types.Value) {
	b := &storage.Bound{V: k, Open: op == expr.CmpLt || op == expr.CmpGt}
	if op == expr.CmpGe || op == expr.CmpGt {
		if cc.lo == nil || tighterLo(b, cc.lo) {
			cc.lo = b
		}
	} else {
		if cc.hi == nil || tighterHi(b, cc.hi) {
			cc.hi = b
		}
	}
}

// tighterLo/tighterHi compare same-class bounds (certified by the
// planner before intersecting).
func tighterLo(a, b *storage.Bound) bool {
	c, err := a.V.Compare(b.V)
	if err != nil {
		return false
	}
	return c > 0 || (c == 0 && a.Open && !b.Open)
}

func tighterHi(a, b *storage.Bound) bool {
	c, err := a.V.Compare(b.V)
	if err != nil {
		return false
	}
	return c < 0 || (c == 0 && a.Open && !b.Open)
}

// settle folds an equality into the range (and detects contradiction),
// leaving either eq or lo/hi populated.
func (cc *colConstraint) settle() {
	if cc.empty || cc.eq == nil {
		return
	}
	within := func(b *storage.Bound, wantLo bool) bool {
		c, err := cc.eq.Compare(b.V)
		if err != nil {
			// Class mismatch between the equality constant and the
			// certified range class: no row can satisfy both.
			return false
		}
		if wantLo {
			return c > 0 || (c == 0 && !b.Open)
		}
		return c < 0 || (c == 0 && !b.Open)
	}
	if cc.lo != nil && !within(cc.lo, true) {
		cc.empty = true
	}
	if cc.hi != nil && !within(cc.hi, false) {
		cc.empty = true
	}
	cc.lo, cc.hi = nil, nil
}

// estimate ranks the constraint by expected candidate count.
func (cc *colConstraint) estimate() int {
	if cc.empty {
		return 0
	}
	if cc.eq != nil {
		return cc.idx.EstimateEq(*cc.eq, true)
	}
	n, ok := cc.idx.Estimate(cc.lo, cc.hi, true)
	if !ok {
		return 1 << 30
	}
	return n
}

// bindPlan walks the conjuncts in evaluation order, certifying the
// error-free prefix and collecting index constraints, then picks the
// most selective one. nil means no usable index — note that a nil
// bind never builds indexes (builds happen only for conjuncts that
// then become constraints), so falling back cannot thrash builds.
func bindPlan(a *applyAnalysis, ix *storage.IndexSet, relName string, rel *storage.Relation) *boundPlan {
	var cons []*colConstraint
	byCol := map[int]*colConstraint{}
	constraintFor := func(col int, idx *storage.ColumnIndex) *colConstraint {
		cc := byCol[col]
		if cc == nil {
			cc = &colConstraint{col: col, idx: idx}
			byCol[col] = cc
			cons = append(cons, cc)
		}
		return cc
	}
	covered := true        // no conjunct ended the prefix early
	allConstrained := true // every conjunct became a constraint
	neSeen := false

loop:
	for _, c := range a.conj {
		switch c.kind {
		case ckFalse:
			// θ short-circuits false here for every row, and the
			// certified prefix before this point cannot error: the
			// statement is a no-op (UPDATE) / keeps everything (DELETE).
			return &boundPlan{empty: true}
		case ckOpaque:
			covered, allConstrained = false, false
			break loop
		case ckSimple:
			switch c.op {
			case expr.CmpNe:
				// Never errors, so it is a safe prefix member, but as a
				// constraint it excludes almost nothing: residual-only.
				neSeen = true
				continue
			case expr.CmpEq:
				// Never errors regardless of classes (cross-class
				// equality is false, not an error), so the prefix stays
				// certified even without an index.
				if idx := ix.Hashed(relName, rel, c.col); idx != nil {
					constraintFor(c.col, idx).tightenEq(c.k)
				} else {
					allConstrained = false
				}
				continue
			default:
				// Ordered comparison: certification requires an index
				// whose observed class matches the constant's class
				// (IndexNone — a column of only NULLs — is vacuously
				// safe: every comparison evaluates to NULL).
				idx := ix.Ordered(relName, rel, c.col)
				if idx == nil {
					covered, allConstrained = false, false
					break loop
				}
				cls := idx.Class()
				if cls != storage.IndexNone && cls != storage.ClassOf(c.k) {
					covered, allConstrained = false, false
					break loop
				}
				constraintFor(c.col, idx).tightenRange(c.op, c.k)
			}
		}
	}
	if len(cons) == 0 {
		return nil
	}
	anyEmpty := false
	for _, cc := range cons {
		cc.settle()
		anyEmpty = anyEmpty || cc.empty
	}
	if anyEmpty {
		// Contradictory constraints on some column: θ is false on every
		// row with a non-NULL value there and NULL otherwise. For UPDATE
		// that is a no-op either way; for DELETE the θ = NULL rows must
		// still be removed, which no probe shape expresses — reference
		// path.
		if a.keep != nil {
			return nil
		}
		return &boundPlan{empty: true}
	}
	best := cons[0]
	for _, cc := range cons[1:] {
		if cc.estimate() < best.estimate() {
			best = cc
		}
	}
	direct := covered && allConstrained && !neSeen
	p := &boundPlan{
		colOrd:      best.col,
		idx:         best.idx,
		eq:          best.eq,
		lo:          best.lo,
		hi:          best.hi,
		direct:      direct,
		exact:       direct && len(cons) == 1,
		noteReplace: ix.HasIndexOnAny(relName, a.setCols),
	}
	if direct && len(cons) > 1 {
		for _, cc := range cons {
			if cc == best {
				continue
			}
			p.res = append(p.res, resCheck{ord: cc.col, eq: cc.eq, lo: cc.lo, hi: cc.hi})
		}
	}
	return p
}

// execution ------------------------------------------------------------------

// probe collects the plan's candidate positions as a bitmap over row
// positions: iteration order over set bits is ascending by
// construction, replacing a per-statement sort, and the bitmap plus
// the position buffer both come from the set's reusable scratch.
// ok=false means the index could not answer after all (defensive; the
// caller falls back and invalidates). count bounds the number of
// candidates (bitmap deduplication can only shrink it).
func (p *boundPlan) probe(ix *storage.IndexSet, nRows int, withNulls bool) (bm []uint64, count int, ok bool) {
	sc := ix.Scratch()
	buf := sc.Pos[:0]
	var cand []int32
	if p.eq != nil {
		cand, ok = p.idx.Eq(*p.eq, withNulls, buf)
	} else {
		cand, ok = p.idx.Range(p.lo, p.hi, withNulls, buf)
	}
	if cand != nil {
		sc.Pos = cand[:0] // keep the (possibly grown) backing array
	}
	if !ok {
		return nil, 0, false
	}
	bm = sc.Bitmap((nRows + 63) / 64)
	for _, pos := range cand {
		if pos < 0 || int(pos) >= nRows {
			return nil, 0, false
		}
		bm[pos>>6] |= 1 << (uint(pos) & 63)
	}
	return bm, len(cand), true
}

// runIndexedUpdate applies an UPDATE through its bound plan: probe the
// candidates, evaluate residual θ and the SET closures row-wise in
// ascending position order (so the first error matches the reference
// loop's), then commit the rewrites. When no index sits on a SET
// column the values are written into the resident tuples in place —
// safe because the indexed apply path only ever runs against privately
// owned states (see storage.ApplyMutator) whose shared views are deep
// clones. The common shape of that case (SET expressions independent
// of earlier SET targets) commits in a single pass with an undo log;
// the rest stage all values before writing any. When an index must
// observe the rewrite, fresh rows are carved from an arena so
// maintenance sees distinct old/new tuples. Every path is
// all-or-nothing: an evaluation error leaves the state untouched,
// exactly as a failed statement must (it never enters the history).
func runIndexedUpdate(rel *storage.Relation, relName string, ix *storage.IndexSet, a *applyAnalysis, p *boundPlan) (applied bool, err error) {
	if p.empty {
		return true, nil
	}
	// Exact plans touch only rows certainly satisfying θ; residual
	// plans must include NULL-keyed rows (NULL never short-circuits
	// the conjunction, so later conjuncts still evaluate on them).
	// Direct plans (every conjunct a certified constraint) exclude
	// NULL-keyed rows from the probe: some constrained column is NULL ⇒
	// that conjunct is NULL ⇒ θ is not true, and certification
	// guarantees skipping the row cannot hide an evaluation error.
	// Residual plans must include them — NULL never short-circuits the
	// conjunction, so the compiled θ still evaluates on them.
	bm, count, ok := p.probe(ix, len(rel.Tuples), !p.direct)
	if !ok {
		return false, nil
	}
	if !p.noteReplace && a.seqSafe {
		return runUpdateInPlace(rel, ix, a, p, bm, count)
	}
	// Phase 1 evaluates residual θ and the SET closures in ascending
	// position order (so the first error matches the reference loop's)
	// without mutating anything, clearing the bits of non-qualifying
	// rows; phase 2 commits the surviving bits. Staging every value
	// before writing any keeps application all-or-nothing: an
	// evaluation error on a later row leaves earlier rows untouched,
	// exactly as the reference loop behaves.
	nset := len(a.setCols)
	sc := ix.Scratch()
	setVals := sc.Vals[:0]
	if cap(setVals) < count*nset {
		setVals = make([]types.Value, 0, count*nset)
	}
	affected := 0
	for w, bw := range bm {
		base := w << 6
		for bw != 0 {
			b := bits.TrailingZeros64(bw)
			bw &= bw - 1
			pos := base + b
			t := rel.Tuples[pos]
			qual := true
			if p.exact {
				// The probe interval is exactly the satisfying set.
			} else if p.direct {
				for i := range p.res {
					v := t[p.res[i].ord]
					if v.IsNull() || !p.res[i].satisfies(v) {
						qual = false
						break
					}
				}
			} else {
				var err error
				qual, err = a.pred(t)
				if err != nil {
					sc.Vals = setVals[:0]
					return true, err
				}
			}
			if !qual {
				bm[w] &^= 1 << uint(b)
				continue
			}
			for _, fn := range a.setFns {
				v, err := fn(t)
				if err != nil {
					sc.Vals = setVals[:0]
					return true, err
				}
				setVals = append(setVals, v)
			}
			affected++
		}
	}
	sc.Vals = setVals[:0] // staged values are copied below; reuse the backing
	if affected == 0 || nset == 0 {
		// No satisfying rows, or an all-identity SET vector: writing
		// back value-identical contents has no observable effect.
		return true, nil
	}
	if !p.noteReplace {
		// No index sits on a SET column, so the rewrite cannot move an
		// indexed key: write the staged values into the resident tuples
		// directly. The private-ownership contract of the indexed apply
		// path (see storage.ApplyMutator) makes this invisible — every
		// shared view of the state is a deep clone, so no reader holds
		// these tuple objects.
		i := 0
		for w, bw := range bm {
			base := w << 6
			for bw != 0 {
				b := bits.TrailingZeros64(bw)
				bw &= bw - 1
				t := rel.Tuples[base+b]
				for j, ord := range a.setCols {
					t[ord] = setVals[i*nset+j]
				}
				i++
			}
		}
		return true, nil
	}
	// An indexed column is being SET: rewrite through fresh rows carved
	// from one arena so the maintenance hook sees distinct old and new
	// tuples (rows never mutate in place once their old value feeds
	// index maintenance; sharing one backing array is unobservable).
	arity := rel.Schema.Arity()
	arena := make([]types.Value, affected*arity)
	i := 0
	for w, bw := range bm {
		base := w << 6
		for bw != 0 {
			b := bits.TrailingZeros64(bw)
			bw &= bw - 1
			pos := base + b
			row := schema.Tuple(arena[i*arity : (i+1)*arity : (i+1)*arity])
			old := rel.Tuples[pos]
			copy(row, old)
			for j, ord := range a.setCols {
				row[ord] = setVals[i*nset+j]
			}
			rel.Tuples[pos] = row
			ix.NoteReplace(relName, pos, old, row)
			i++
		}
	}
	return true, nil
}

// runUpdateInPlace is runIndexedUpdate's fast commit: qualify,
// evaluate, and write each value in one ascending pass over the
// bitmap, stashing every overwritten value in an undo log. An
// evaluation error replays the log (ascending again, restoring values
// in write order — a partially written final row restores naturally
// because its undo entries stop where its writes stopped), so the
// state stays untouched on error exactly like the staged paths.
// Requires a.seqSafe — no SET expression reads a column an earlier SET
// clause writes — so evaluating over the partially rewritten tuple
// still sees original values; and !p.noteReplace, so no index observes
// the mutation.
func runUpdateInPlace(rel *storage.Relation, ix *storage.IndexSet, a *applyAnalysis, p *boundPlan, bm []uint64, count int) (applied bool, err error) {
	nset := len(a.setCols)
	sc := ix.Scratch()
	undo := sc.Vals[:0]
	if cap(undo) < count*nset {
		undo = make([]types.Value, 0, count*nset)
	}
	for w, bw := range bm {
		base := w << 6
		for bw != 0 {
			b := bits.TrailingZeros64(bw)
			bw &= bw - 1
			t := rel.Tuples[base+b]
			if p.direct {
				qual := true
				for i := range p.res {
					v := t[p.res[i].ord]
					if v.IsNull() || !p.res[i].satisfies(v) {
						qual = false
						break
					}
				}
				if !qual {
					bm[w] &^= 1 << uint(b)
					continue
				}
			} else if !p.exact {
				qual, perr := a.pred(t)
				if perr != nil {
					rollbackInPlace(rel, bm, a.setCols, undo)
					sc.Vals = undo[:0]
					return true, perr
				}
				if !qual {
					bm[w] &^= 1 << uint(b)
					continue
				}
			}
			for j, ord := range a.setCols {
				v, ferr := a.setFns[j](t)
				if ferr != nil {
					rollbackInPlace(rel, bm, a.setCols, undo)
					sc.Vals = undo[:0]
					return true, ferr
				}
				undo = append(undo, t[ord])
				t[ord] = v
			}
		}
	}
	sc.Vals = undo[:0]
	return true, nil
}

// rollbackInPlace restores the values an aborted single-pass update
// overwrote. undo holds them in write order — ascending position, SET
// columns in a.setCols order — and rows that failed qualification had
// their bits cleared before any write, so replaying the bitmap
// ascending for exactly len(undo) values puts every one back.
func rollbackInPlace(rel *storage.Relation, bm []uint64, setCols []int, undo []types.Value) {
	i := 0
	for w, bw := range bm {
		if i == len(undo) {
			return
		}
		base := w << 6
		for bw != 0 {
			b := bits.TrailingZeros64(bw)
			bw &= bw - 1
			t := rel.Tuples[base+b]
			for _, ord := range setCols {
				if i == len(undo) {
					return
				}
				t[ord] = undo[i]
				i++
			}
		}
	}
}

// runIndexedDelete applies a DELETE through its bound plan. Candidates
// always include the NULL positions: θ = NULL removes the tuple under
// σ_{¬θ}. Survivors keep their relative order in a fresh compacted
// slice (slice-header surgery only), and the indexes renumber in one
// pass.
func runIndexedDelete(rel *storage.Relation, relName string, ix *storage.IndexSet, a *applyAnalysis, p *boundPlan) (applied bool, err error) {
	if p.empty {
		return true, nil
	}
	bm, count, ok := p.probe(ix, len(rel.Tuples), true)
	if !ok {
		return false, nil
	}
	// The probe's position buffer is free again once the bitmap is
	// built; reuse it for the removal list (both live in the set's
	// scratch, consumed before the next statement).
	sc := ix.Scratch()
	removed := sc.Pos[:0]
	if cap(removed) < count {
		removed = make([]int32, 0, count)
	}
	for w, bw := range bm {
		base := w << 6
		for bw != 0 {
			b := bits.TrailingZeros64(bw)
			bw &= bw - 1
			pos := base + b
			if p.exact {
				removed = append(removed, int32(pos))
				continue
			}
			if p.direct {
				// θ ∈ {true, NULL} ⇔ no conjunct is false ⇔ every
				// constrained column is NULL or satisfies its
				// constraint; the chosen column's candidates already
				// are its interval plus its NULLs.
				rm := true
				for i := range p.res {
					v := rel.Tuples[pos][p.res[i].ord]
					if !v.IsNull() && !p.res[i].satisfies(v) {
						rm = false
						break
					}
				}
				if rm {
					removed = append(removed, int32(pos))
				}
				continue
			}
			keep, err := a.keep(rel.Tuples[pos])
			if err != nil {
				sc.Pos = removed[:0]
				return true, err
			}
			if !keep {
				removed = append(removed, int32(pos))
			}
		}
	}
	sc.Pos = removed[:0]
	if len(removed) == 0 {
		return true, nil
	}
	keep := make([]schema.Tuple, 0, len(rel.Tuples)-len(removed))
	d := 0
	for pos, t := range rel.Tuples {
		if d < len(removed) && removed[d] == int32(pos) {
			d++
			continue
		}
		keep = append(keep, t)
	}
	rel.Tuples = keep
	ix.NoteDelete(relName, removed)
	return true, nil
}

// statement entry points -----------------------------------------------------

// ApplyIndexed implements storage.IndexedMutator for UPDATE.
func (u *Update) ApplyIndexed(db *storage.Database, ix *storage.IndexSet) error {
	rel, err := db.Relation(u.Rel)
	if err != nil {
		return err
	}
	vec, err := u.setVector(rel.Schema)
	if err != nil {
		return err
	}
	if err := expr.Validate(u.Where, rel.Schema); err != nil {
		return err
	}
	for _, sc := range u.Set {
		if err := expr.Validate(sc.E, rel.Schema); err != nil {
			return err
		}
	}
	if a := u.memo.analysis(rel.Schema, func() *applyAnalysis {
		return analyzeUpdate(u.Where, vec, rel.Schema)
	}); a != nil {
		if p := u.memo.bind(a, ix, u.Rel, rel); p != nil {
			if applied, err := runIndexedUpdate(rel, u.Rel, ix, a, p); applied {
				return err
			}
		}
	}
	// Full application rematerializes (or partially mutates, in the
	// naive error case) the relation, after which the indexes can no
	// longer vouch for row positions.
	defer ix.Invalidate(u.Rel)
	if done, err := u.applyCompiled(db, rel, vec); done {
		return err
	}
	return u.applyNaive(rel, vec)
}

// ApplyIndexed implements storage.IndexedMutator for DELETE.
func (d *Delete) ApplyIndexed(db *storage.Database, ix *storage.IndexSet) error {
	rel, err := db.Relation(d.Rel)
	if err != nil {
		return err
	}
	if err := expr.Validate(d.Where, rel.Schema); err != nil {
		return err
	}
	if a := d.memo.analysis(rel.Schema, func() *applyAnalysis {
		return analyzeDelete(d.Where, rel.Schema)
	}); a != nil {
		if p := d.memo.bind(a, ix, d.Rel, rel); p != nil {
			if applied, err := runIndexedDelete(rel, d.Rel, ix, a, p); applied {
				return err
			}
		}
	}
	defer ix.Invalidate(d.Rel)
	if done, err := d.applyCompiled(db, rel); done {
		return err
	}
	return d.applyNaive(rel)
}

// ApplyIndexed implements storage.IndexedMutator for INSERT VALUES:
// the plain append plus delta-wise index maintenance for exactly the
// rows that made it in (matching Apply's partial-append behavior on an
// arity error).
func (i *InsertValues) ApplyIndexed(db *storage.Database, ix *storage.IndexSet) error {
	rel, err := db.Relation(i.Rel)
	if err != nil {
		return err
	}
	first := len(rel.Tuples)
	for _, t := range i.Rows {
		if len(t) != rel.Schema.Arity() {
			ix.NoteAppend(i.Rel, rel, first)
			return fmt.Errorf("history: INSERT arity %d does not match %s", len(t), rel.Schema)
		}
		rel.Tuples = append(rel.Tuples, t.Clone())
	}
	ix.NoteAppend(i.Rel, rel, first)
	return nil
}

// ApplyIndexed implements storage.IndexedMutator for INSERT…SELECT:
// the query still evaluates through the executor, but the appended
// rows maintain the target's indexes instead of invalidating them.
func (i *InsertQuery) ApplyIndexed(db *storage.Database, ix *storage.IndexSet) error {
	rel, err := db.Relation(i.Rel)
	if err != nil {
		return err
	}
	res, err := evalStatementQuery(i.Query, db)
	if err != nil {
		return fmt.Errorf("history: INSERT…SELECT into %s: %w", i.Rel, err)
	}
	if res.Schema.Arity() != rel.Schema.Arity() {
		return fmt.Errorf("history: INSERT…SELECT arity %d does not match %s", res.Schema.Arity(), rel.Schema)
	}
	first := len(rel.Tuples)
	for _, t := range res.Tuples {
		rel.Tuples = append(rel.Tuples, t.Clone())
	}
	ix.NoteAppend(i.Rel, rel, first)
	return nil
}
