package history

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/storage"
)

func upd(rel string, n int64) *Update {
	return &Update{Rel: rel,
		Set:   []SetClause{{Col: "fee", E: expr.IntConst(n)}},
		Where: expr.Ge(expr.Column("price"), expr.IntConst(n))}
}

func TestApplyModificationsReplace(t *testing.T) {
	h := History{upd("t", 1), upd("t", 2), upd("t", 3)}
	pair, err := ApplyModifications(h, []Modification{Replace{Pos: 1, Stmt: upd("t", 99)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Orig) != 3 || len(pair.Mod) != 3 {
		t.Fatalf("padded lengths %d/%d", len(pair.Orig), len(pair.Mod))
	}
	if len(pair.ModifiedPos) != 1 || pair.ModifiedPos[0] != 1 {
		t.Errorf("modified positions = %v", pair.ModifiedPos)
	}
	if pair.Mod[1].(*Update).Set[0].E.String() != "99" {
		t.Errorf("replacement not applied: %s", pair.Mod[1])
	}
	if pair.Orig[1].(*Update).Set[0].E.String() != "2" {
		t.Errorf("original mutated: %s", pair.Orig[1])
	}
}

func TestApplyModificationsInsert(t *testing.T) {
	h := History{upd("t", 1), upd("t", 2)}
	pair, err := ApplyModifications(h, []Modification{InsertStmt{Pos: 1, Stmt: upd("t", 99)}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Orig) != 3 {
		t.Fatalf("padded length %d, want 3", len(pair.Orig))
	}
	if !pair.Orig[1].IsNoOp() {
		t.Errorf("original side must have a no-op at the insert position, got %s", pair.Orig[1])
	}
	if pair.Mod[1].(*Update).Set[0].E.String() != "99" {
		t.Errorf("inserted statement = %s", pair.Mod[1])
	}
	// Surrounding statements aligned.
	if pair.Orig[0] != pair.Mod[0] || pair.Orig[2] != pair.Mod[2] {
		t.Error("unmodified positions must alias the same statement")
	}
}

func TestApplyModificationsDelete(t *testing.T) {
	h := History{upd("t", 1), upd("t", 2)}
	pair, err := ApplyModifications(h, []Modification{DeleteStmt{Pos: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if !pair.Mod[0].IsNoOp() {
		t.Errorf("deleted statement must become a no-op, got %s", pair.Mod[0])
	}
	if pair.Orig[0].IsNoOp() {
		t.Error("original side must keep the statement")
	}
}

func TestApplyModificationsCrossClass(t *testing.T) {
	// Replacing an update with a delete = delete + insert (§3).
	h := History{upd("t", 1), upd("t", 2)}
	del := &Delete{Rel: "t", Where: expr.Ge(expr.Column("price"), expr.IntConst(5))}
	pair, err := ApplyModifications(h, []Modification{Replace{Pos: 0, Stmt: del}})
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Orig) != 3 {
		t.Fatalf("padded length %d, want 3", len(pair.Orig))
	}
	if !pair.Mod[0].IsNoOp() {
		t.Errorf("old update must be no-op'd: %s", pair.Mod[0])
	}
	if _, ok := pair.Mod[1].(*Delete); !ok {
		t.Errorf("new delete must be inserted: %s", pair.Mod[1])
	}
	if !pair.Orig[1].IsNoOp() {
		t.Errorf("original must get a paired no-op: %s", pair.Orig[1])
	}
}

func TestApplyModificationsSequence(t *testing.T) {
	// Positions refer to the evolving history: after inserting at 0,
	// replacing position 2 targets what was originally position 1.
	h := History{upd("t", 1), upd("t", 2)}
	pair, err := ApplyModifications(h, []Modification{
		InsertStmt{Pos: 0, Stmt: upd("t", 50)},
		Replace{Pos: 2, Stmt: upd("t", 99)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pair.Orig) != 3 {
		t.Fatalf("length %d", len(pair.Orig))
	}
	if got := pair.Mod[2].(*Update).Set[0].E.String(); got != "99" {
		t.Errorf("position shift wrong: pair.Mod[2] = %s", pair.Mod[2])
	}
	if len(pair.ModifiedPos) != 2 {
		t.Errorf("modified positions = %v", pair.ModifiedPos)
	}
}

func TestApplyModificationsErrors(t *testing.T) {
	h := History{upd("t", 1)}
	cases := [][]Modification{
		{Replace{Pos: 5, Stmt: upd("t", 9)}},
		{DeleteStmt{Pos: -1}},
		{InsertStmt{Pos: 7, Stmt: upd("t", 9)}},
		{},
	}
	for _, mods := range cases {
		if _, err := ApplyModifications(h, mods); err == nil {
			t.Errorf("mods %v: expected error", mods)
		}
	}
}

// TestPaddedSemantics: executing the padded histories must equal
// executing the unpadded originals — no-ops change nothing.
func TestPaddedSemantics(t *testing.T) {
	h := paperHistory()
	pair, err := ApplyModifications(h, []Modification{
		InsertStmt{Pos: 1, Stmt: &Update{Rel: "orders",
			Set:   []SetClause{{Col: "fee", E: expr.Add(expr.Column("fee"), expr.IntConst(1))}},
			Where: expr.Eq(expr.Column("country"), expr.StringConst("US"))}},
	})
	if err != nil {
		t.Fatal(err)
	}
	dbPadded := ordersDB()
	if err := pair.Orig.Apply(dbPadded); err != nil {
		t.Fatal(err)
	}
	dbPlain := ordersDB()
	if err := h.Apply(dbPlain); err != nil {
		t.Fatal(err)
	}
	rp, _ := dbPadded.Relation("orders")
	rq, _ := dbPlain.Relation("orders")
	if !rp.EqualAsBag(rq) {
		t.Errorf("padding changed original semantics:\n%s\nvs\n%s", rp, rq)
	}
}

func TestSuffixFrom(t *testing.T) {
	h := History{upd("t", 1), upd("t", 2), upd("t", 3)}
	pair, err := ApplyModifications(h, []Modification{Replace{Pos: 1, Stmt: upd("t", 99)}})
	if err != nil {
		t.Fatal(err)
	}
	suf := pair.SuffixFrom(pair.FirstModified())
	if len(suf.Orig) != 2 {
		t.Fatalf("suffix length %d", len(suf.Orig))
	}
	if suf.ModifiedPos[0] != 0 {
		t.Errorf("rebased modified position = %d", suf.ModifiedPos[0])
	}
}

func TestRestrictToRelation(t *testing.T) {
	h := History{upd("a", 1), upd("b", 2), upd("a", 3)}
	pair, err := ApplyModifications(h, []Modification{Replace{Pos: 2, Stmt: upd("a", 99)}})
	if err != nil {
		t.Fatal(err)
	}
	sub, positions := pair.RestrictToRelation("a")
	if len(sub.Orig) != 2 || len(positions) != 2 {
		t.Fatalf("restricted to %d statements", len(sub.Orig))
	}
	if sub.ModifiedPos[0] != 1 {
		t.Errorf("re-mapped modified position = %v", sub.ModifiedPos)
	}
	if positions[1] != 2 {
		t.Errorf("position map = %v", positions)
	}
}

func TestHistoryHelpers(t *testing.T) {
	h := History{upd("a", 1), upd("b", 2), upd("a", 3)}
	if got := h.OnRelation("a"); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("OnRelation = %v", got)
	}
	rels := h.Relations()
	if !rels["a"] || !rels["b"] || len(rels) != 2 {
		t.Errorf("Relations = %v", rels)
	}
	r := h.Restrict([]int{0, 2})
	if len(r) != 2 || r[1] != h[2] {
		t.Errorf("Restrict = %v", r)
	}
	if !h.TupleIndependent() {
		t.Error("updates-only history must be tuple independent")
	}
	h2 := append(h, &InsertQuery{Rel: "a"})
	if h2.TupleIndependent() {
		t.Error("history with I_Q must not be tuple independent")
	}
}

func TestHistoryApplyErrorWrapping(t *testing.T) {
	db := storage.NewDatabase()
	h := History{upd("missing", 1)}
	err := h.Apply(db)
	if err == nil {
		t.Fatal("expected error for missing relation")
	}
}
