// Package history implements the update statement classes of the paper
// (§2, Eq. 1–4) — updates U_{Set,θ}, deletes D_θ, inserts of constant
// tuples I_t, and inserts with query I_Q — together with transactional
// histories, the hypothetical modifications of §3, and the no-op
// padding rewrite of §6 that reduces statement insertion/deletion to
// same-type replacement.
package history

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// Statement is one element of a transactional history. Statements are
// storage.Mutators, so a VersionedDatabase can log and replay them.
type Statement interface {
	storage.Mutator
	// Table returns the relation the statement modifies.
	Table() string
	// TupleIndependent reports the property of Def. 1: the statement
	// processes each input tuple in isolation. Everything but inserts
	// with query is tuple independent (Lemma 1).
	TupleIndependent() bool
	// IsNoOp reports whether the statement syntactically cannot change
	// any database (condition false / empty insert).
	IsNoOp() bool
	isStatement()
}

// SetClause assigns one attribute; attributes without a clause keep
// their value (the identity convention of §2).
type SetClause struct {
	Col string
	E   expr.Expr
}

// Update is U_{Set,θ}(R): tuples satisfying Where are rewritten by Set,
// all others pass through (Eq. 1). Updates are used through pointers
// (the memo embeds a lock).
type Update struct {
	Rel   string
	Set   []SetClause
	Where expr.Expr

	memo progMemo // compiled-application cache, see apply_exec.go
}

// Delete is D_θ(R): removes the tuples satisfying Where (Eq. 2).
// Deletes are used through pointers (the memo embeds a lock).
type Delete struct {
	Rel   string
	Where expr.Expr

	memo progMemo
}

// InsertValues is I_t(R) generalized to a batch of constant tuples
// (Eq. 3).
type InsertValues struct {
	Rel  string
	Rows []schema.Tuple
}

// InsertQuery is I_Q(R): appends the result of Query evaluated over the
// current database state (Eq. 4). It is the one statement class that is
// not tuple independent.
type InsertQuery struct {
	Rel   string
	Query algebra.Query
}

func (*Update) isStatement()       {}
func (*Delete) isStatement()       {}
func (*InsertValues) isStatement() {}
func (*InsertQuery) isStatement()  {}

// Table implementations.
func (u *Update) Table() string       { return u.Rel }
func (d *Delete) Table() string       { return d.Rel }
func (i *InsertValues) Table() string { return i.Rel }
func (i *InsertQuery) Table() string  { return i.Rel }

// TupleIndependent implementations (Lemma 1).
func (u *Update) TupleIndependent() bool       { return true }
func (d *Delete) TupleIndependent() bool       { return true }
func (i *InsertValues) TupleIndependent() bool { return true }
func (i *InsertQuery) TupleIndependent() bool  { return false }

// IsNoOp implementations.
func (u *Update) IsNoOp() bool       { return expr.IsTriviallyFalse(u.Where) || len(u.Set) == 0 }
func (d *Delete) IsNoOp() bool       { return expr.IsTriviallyFalse(d.Where) }
func (i *InsertValues) IsNoOp() bool { return len(i.Rows) == 0 }
func (i *InsertQuery) IsNoOp() bool  { return false }

func (u *Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UPDATE %s SET ", u.Rel)
	for i, sc := range u.Set {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s = %s", sc.Col, sc.E)
	}
	fmt.Fprintf(&b, " WHERE %s", u.Where)
	return b.String()
}

func (d *Delete) String() string {
	return fmt.Sprintf("DELETE FROM %s WHERE %s", d.Rel, d.Where)
}

func (i *InsertValues) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "INSERT INTO %s VALUES ", i.Rel)
	for j, t := range i.Rows {
		if j > 0 {
			b.WriteString(", ")
		}
		b.WriteString(t.String())
	}
	return b.String()
}

func (i *InsertQuery) String() string {
	return fmt.Sprintf("INSERT INTO %s (%s)", i.Rel, i.Query)
}

// setVector expands the sparse Set clauses into one expression per
// column of s, defaulting to the identity (§2's notational shortcut).
func (u *Update) setVector(s *schema.Schema) ([]expr.Expr, error) {
	out := make([]expr.Expr, s.Arity())
	for i, c := range s.Columns {
		out[i] = expr.Column(c.Name)
	}
	for _, sc := range u.Set {
		idx := s.ColIndex(sc.Col)
		if idx < 0 {
			return nil, fmt.Errorf("history: SET column %q not in %s", sc.Col, s)
		}
		out[idx] = sc.E
	}
	return out, nil
}

// SetVector exposes the dense per-column update expressions for
// reenactment and symbolic execution.
func (u *Update) SetVector(s *schema.Schema) ([]expr.Expr, error) { return u.setVector(s) }

// Apply implements Eq. 1. The condition must evaluate to true for a
// tuple to be rewritten; NULL counts as not satisfied. Application
// routes through a compiled single-statement program (see
// applyCompiled) with the naive per-tuple loop as fallback and
// reference semantics.
func (u *Update) Apply(db *storage.Database) error {
	rel, err := db.Relation(u.Rel)
	if err != nil {
		return err
	}
	vec, err := u.setVector(rel.Schema)
	if err != nil {
		return err
	}
	if err := expr.Validate(u.Where, rel.Schema); err != nil {
		return err
	}
	for _, sc := range u.Set {
		if err := expr.Validate(sc.E, rel.Schema); err != nil {
			return err
		}
	}
	if done, err := u.applyCompiled(db, rel, vec); done {
		return err
	}
	return u.applyNaive(rel, vec)
}

// applyNaive is the reference tuple-at-a-time loop for Eq. 1 (kept as
// the oracle of the compiled-application property tests and as the
// fallback for statements outside the compilable subset).
func (u *Update) applyNaive(rel *storage.Relation, vec []expr.Expr) error {
	for ti, t := range rel.Tuples {
		ok, err := expr.Satisfied(u.Where, rel.Schema, t)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		env := expr.TupleEnv(rel.Schema, t)
		row := make(schema.Tuple, len(vec))
		for i, e := range vec {
			v, err := expr.Eval(e, env)
			if err != nil {
				return err
			}
			row[i] = v
		}
		rel.Tuples[ti] = row
	}
	return nil
}

// Apply implements Eq. 2: a tuple survives iff ¬θ evaluates to true.
// This matches the reenactment query σ_{¬θ}(R) exactly; a condition
// evaluating to NULL therefore removes the tuple (documented deviation
// from SQL, irrelevant for NULL-free workloads). Application routes
// through a compiled σ_{¬θ} program with the naive loop as fallback.
func (d *Delete) Apply(db *storage.Database) error {
	rel, err := db.Relation(d.Rel)
	if err != nil {
		return err
	}
	if err := expr.Validate(d.Where, rel.Schema); err != nil {
		return err
	}
	if done, err := d.applyCompiled(db, rel); done {
		return err
	}
	return d.applyNaive(rel)
}

// applyNaive is the reference per-tuple loop for Eq. 2.
func (d *Delete) applyNaive(rel *storage.Relation) error {
	keep := rel.Tuples[:0:0]
	neg := expr.Negation(d.Where)
	for _, t := range rel.Tuples {
		ok, err := expr.Satisfied(neg, rel.Schema, t)
		if err != nil {
			return err
		}
		if ok {
			keep = append(keep, t)
		}
	}
	rel.Tuples = keep
	return nil
}

// Apply implements Eq. 3.
func (i *InsertValues) Apply(db *storage.Database) error {
	rel, err := db.Relation(i.Rel)
	if err != nil {
		return err
	}
	for _, t := range i.Rows {
		if len(t) != rel.Schema.Arity() {
			return fmt.Errorf("history: INSERT arity %d does not match %s", len(t), rel.Schema)
		}
		rel.Tuples = append(rel.Tuples, t.Clone())
	}
	return nil
}

// Apply implements Eq. 4: the query is evaluated over the database
// state before the insert — through a compiled program when the query
// is compilable, through the interpreter otherwise.
func (i *InsertQuery) Apply(db *storage.Database) error {
	return i.apply(db, evalStatementQuery)
}

// applyNaive is Apply pinned to the tree-walking interpreter.
func (i *InsertQuery) applyNaive(db *storage.Database) error {
	return i.apply(db, algebra.Eval)
}

func (i *InsertQuery) apply(db *storage.Database, eval func(algebra.Query, *storage.Database) (*storage.Relation, error)) error {
	rel, err := db.Relation(i.Rel)
	if err != nil {
		return err
	}
	res, err := eval(i.Query, db)
	if err != nil {
		return fmt.Errorf("history: INSERT…SELECT into %s: %w", i.Rel, err)
	}
	if res.Schema.Arity() != rel.Schema.Arity() {
		return fmt.Errorf("history: INSERT…SELECT arity %d does not match %s", res.Schema.Arity(), rel.Schema)
	}
	for _, t := range res.Tuples {
		rel.Tuples = append(rel.Tuples, t.Clone())
	}
	return nil
}

// NoOpFor builds a no-op statement of the same class and relation as
// st, used to pad histories (§6): an insertion modification becomes
// no-op←u and a deletion becomes u←no-op.
func NoOpFor(st Statement) Statement {
	switch x := st.(type) {
	case *Update:
		return &Update{Rel: x.Rel, Set: []SetClause{}, Where: expr.False}
	case *Delete:
		return &Delete{Rel: x.Rel, Where: expr.False}
	case *InsertValues:
		return &InsertValues{Rel: x.Rel}
	case *InsertQuery:
		// An insert of the empty query result; pairs with I_Q in the
		// insert-split optimization.
		return &InsertValues{Rel: x.Rel}
	}
	return nil
}

// SameClass reports whether two statements are of the same statement
// class on the same relation (inserts of either flavor form one class).
func SameClass(a, b Statement) bool {
	if !strings.EqualFold(a.Table(), b.Table()) {
		return false
	}
	class := func(s Statement) int {
		switch s.(type) {
		case *Update:
			return 0
		case *Delete:
			return 1
		case *InsertValues, *InsertQuery:
			return 2
		}
		return -1
	}
	return class(a) == class(b)
}
