package history

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// randomIndexedCond generates WHERE conditions that stress the indexed
// apply planner specifically: certified single- and multi-column
// constraints (hash and ordered probes, direct plans), contradictions,
// class mismatches, constant and NULL-constant conjuncts, Ne, and
// shapes outside the indexable subset (Or, IsNull, arithmetic) that
// must take the residual or fallback path.
func randomIndexedCond(rng *rand.Rand) expr.Expr {
	k, v, g := expr.Column("k"), expr.Column("v"), expr.Column("g")
	ic := func(n int) *expr.Const { return expr.IntConst(int64(n)) }
	grp := func() *expr.Const { return expr.StringConst([]string{"a", "b", "c"}[rng.Intn(3)]) }
	switch rng.Intn(14) {
	case 0: // hash probe
		return expr.Eq(k, ic(rng.Intn(40)))
	case 1: // ordered range probe
		return []func(l, r expr.Expr) *expr.Cmp{expr.Ge, expr.Gt, expr.Le, expr.Lt}[rng.Intn(4)](v, ic(rng.Intn(40)))
	case 2: // string hash probe
		return expr.Eq(g, grp())
	case 3: // multi-column direct plan
		return expr.AndOf(expr.Eq(k, ic(rng.Intn(40))), expr.Ge(v, ic(rng.Intn(40))))
	case 4: // triple conjunction, mixed classes
		return expr.AndOf(expr.Eq(g, grp()), expr.Lt(k, ic(rng.Intn(40))), expr.Gt(v, ic(rng.Intn(20))))
	case 5: // contradiction via equalities (UPDATE no-op, DELETE must fall back for NULLs)
		c := rng.Intn(40)
		return expr.AndOf(expr.Eq(k, ic(c)), expr.Eq(k, ic(c+1)))
	case 6: // contradiction via an empty range
		return expr.AndOf(expr.Ge(v, ic(30)), expr.Lt(v, ic(5)))
	case 7: // class mismatch: int column against a string constant
		return expr.Eq(k, expr.StringConst("x"))
	case 8: // constant conjunct, sometimes false
		return expr.AndOf(expr.BoolConst(rng.Intn(2) == 0), expr.Eq(k, ic(rng.Intn(40))))
	case 9: // NULL constant: both paths must reject the statement alike
		return expr.Eq(k, expr.Constant(types.Null()))
	case 10: // Ne blocks direct plans but not the probe
		return expr.AndOf(expr.Ne(k, ic(rng.Intn(40))), expr.Ge(v, ic(rng.Intn(40))))
	case 11: // disjunction: outside the indexable subset
		return expr.OrOf(expr.Eq(k, ic(rng.Intn(40))), expr.Lt(v, ic(rng.Intn(15))))
	case 12: // IS NULL conjunct: residual evaluation over NULL-keyed rows
		return expr.AndOf(expr.Ge(k, ic(rng.Intn(40))), &expr.IsNull{E: v})
	default: // arithmetic comparand: not a simple col∘const conjunct
		return expr.Ge(expr.Add(k, v), ic(rng.Intn(60)))
	}
}

// randomIndexedStatement biases toward UPDATE/DELETE (the statements the
// indexed path accelerates) and includes SETs that touch indexed
// predicate columns, forcing the NoteReplace maintenance path.
func randomIndexedStatement(rng *rand.Rand, i int) Statement {
	switch rng.Intn(10) {
	case 0:
		return &Delete{Rel: "r", Where: randomIndexedCond(rng)}
	case 1:
		return &InsertValues{Rel: "r", Rows: []schema.Tuple{
			schema.NewTuple(types.Int(int64(rng.Intn(40))), types.Int(int64(rng.Intn(40))), types.String("a")),
			schema.NewTuple(types.Int(int64(rng.Intn(40))), types.Null(), types.String("b")),
		}}
	case 2: // SET on a predicate column: the rewrite moves indexed keys
		return &Update{Rel: "r",
			Set:   []SetClause{{Col: "k", E: expr.Add(expr.Column("k"), expr.IntConst(1))}},
			Where: randomIndexedCond(rng)}
	case 3: // multi-column SET crossing predicate and payload columns
		return &Update{Rel: "r",
			Set: []SetClause{
				{Col: "v", E: expr.IntConst(int64(rng.Intn(25)))},
				{Col: "g", E: expr.StringConst("z")},
			},
			Where: randomIndexedCond(rng)}
	default: // payload-only SET: the in-place fast path
		return &Update{Rel: "r",
			Set:   []SetClause{{Col: "v", E: expr.Add(expr.Column("v"), expr.IntConst(int64(1+rng.Intn(5))))}},
			Where: randomIndexedCond(rng)}
	}
}

// TestIndexedApplyEquivalence is the indexed-application property: for
// randomized histories over relations large enough to build indexes,
// applying each statement through storage.ApplyMutator with a
// persistent IndexSet (delta maintenance across statements, exactly the
// tip's regime) and through the reference loops yields identical states
// after every statement and identical error behavior. Relations below
// MinIndexRows keep the decline-to-index fallback honest.
func TestIndexedApplyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	trials := 30
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		rows := []int{40, 300, 700}[rng.Intn(3)]
		base := randomApplyDB(rng, rows)
		naiveDB := base.Clone()
		fastDB := base.Clone()
		ix := storage.NewIndexSet()
		for i := 0; i < 12; i++ {
			st := randomIndexedStatement(rng, i)
			before := naiveDB.Clone()
			errN := applyNaiveStatement(t, st, naiveDB)
			errF := storage.ApplyMutator(st, fastDB, ix)
			if (errN == nil) != (errF == nil) {
				t.Fatalf("trial %d rows %d: error divergence on %s: naive=%v indexed=%v",
					trial, rows, st, errN, errF)
			}
			if errN != nil {
				// Rejected statements never enter a log; restore both
				// sides to the pre-statement state and keep going so one
				// rejection doesn't end the trial.
				naiveDB, fastDB = before, before.Clone()
				ix = storage.NewIndexSet()
				continue
			}
			requireDatabasesEqual(t, fmt.Sprintf("trial %d rows %d after %s", trial, rows, st), naiveDB, fastDB)
		}
	}
}

// TestIndexedApplyAllVersionPositions pins the full versioned pipeline
// with tip indexing on: every version of a random history reconstructed
// by time travel (whose replay runs the indexed path against a
// replay-private IndexSet) must equal naive ground truth at every
// position.
func TestIndexedApplyAllVersionPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 8; trial++ {
		base := randomApplyDB(rng, 320)
		vdb := storage.NewVersioned(base)
		vdb.SetTipIndexing(true)
		states := []*storage.Database{base.Clone()}
		cur := base.Clone()
		for i := 0; i < 8; i++ {
			st := randomIndexedStatement(rng, i)
			next := cur.Clone()
			if err := applyNaiveStatement(t, st, next); err != nil {
				continue
			}
			if err := vdb.Apply(st); err != nil {
				t.Fatalf("trial %d: versioned apply of %s: %v", trial, st, err)
			}
			cur = next
			states = append(states, cur.Clone())
		}
		for ver := 0; ver < len(states); ver++ {
			got, err := vdb.Version(ver)
			if err != nil {
				t.Fatalf("trial %d: version %d: %v", trial, ver, err)
			}
			requireDatabasesEqual(t, fmt.Sprintf("trial %d version %d", trial, ver), states[ver], got)
		}
	}
}

// TestIndexedApplyUnderConcurrentReaders appends through the indexed
// tip while snapshot readers time-travel concurrently — under -race
// this is the shared-state safety test for in-place application: every
// shared view is a deep clone, so no reader may ever observe a rewrite.
// Each reader re-reads a version it captured earlier and requires the
// bytes to be identical, which would fail if a snapshot aliased tuples
// the writer mutates.
func TestIndexedApplyUnderConcurrentReaders(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	base := randomApplyDB(rng, 320)
	vdb := storage.NewVersioned(base)
	vdb.SetTipIndexing(true)
	cache := storage.NewSnapshotCache(vdb)

	// Pre-generate the history so the writer goroutine owns rng.
	var stmts []Statement
	ground := base.Clone()
	for i := 0; len(stmts) < 60; i++ {
		st := randomIndexedStatement(rng, i)
		probe := ground.Clone()
		if err := applyNaiveStatement(t, st, probe); err != nil {
			continue
		}
		ground = probe
		stmts = append(stmts, st)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 16)
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			lrng := rand.New(rand.NewSource(int64(100 + g)))
			var pinVer int
			var pinned *storage.Database
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				ver, snap := vdb.TipSnapshot()
				if lrng.Intn(2) == 0 && ver > 0 {
					v := lrng.Intn(ver + 1)
					var err error
					if snap, err = cache.Snapshot(v); err != nil {
						errs <- err
						return
					}
					ver = v
				}
				if pinned == nil {
					pinVer, pinned = ver, snap
					continue
				}
				// A version's state is immutable forever: re-reading the
				// pinned version must reproduce the exact tuples captured
				// while the writer was elsewhere in the history.
				re, err := vdb.Version(pinVer)
				if err != nil {
					errs <- err
					return
				}
				for _, name := range pinned.RelationNames() {
					pr, _ := pinned.Relation(name)
					rr, _ := re.Relation(name)
					if !pr.EqualAsBag(rr) {
						errs <- fmt.Errorf("reader %d: version %d changed between reads", g, pinVer)
						return
					}
				}
				pinVer, pinned = ver, snap
			}
		}(g)
	}
	for _, st := range stmts {
		if err := vdb.Apply(st); err != nil {
			t.Fatalf("apply %s: %v", st, err)
		}
	}
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	final, err := vdb.Version(len(stmts))
	if err != nil {
		t.Fatal(err)
	}
	requireDatabasesEqual(t, "final state", ground, final)
}

// errorProneDB builds relation r at index-building scale with
// controlled payloads: k = i, v = i+1 except v = 0 at row 400, g = "a"
// everywhere. A division by v errors mid-relation, after hundreds of
// earlier rows have already qualified and evaluated.
func errorProneDB(rows int) *storage.Database {
	db := storage.NewDatabase()
	r := storage.NewRelation(schema.New("r", applyCols()...))
	for i := 0; i < rows; i++ {
		v := int64(i + 1)
		if i == 400 {
			v = 0
		}
		r.Add(schema.NewTuple(types.Int(int64(i)), types.Int(v), types.String("a")))
	}
	db.AddRelation(r)
	return db
}

// TestIndexedApplyErrorRollsBack pins the all-or-nothing guarantee of
// the indexed apply path — in particular the single-pass in-place
// commit's undo log: an evaluation error mid-relation, after earlier
// qualified rows were already rewritten in place, must leave the state
// byte-for-byte untouched. A failed statement never enters the
// history, so the tip must stay exactly the pre-statement state.
func TestIndexedApplyErrorRollsBack(t *testing.T) {
	whereA := func() expr.Expr { return expr.Eq(expr.Column("g"), expr.StringConst("a")) }
	divByV := func() expr.Expr { return expr.Div(expr.IntConst(100), expr.Column("v")) }
	cases := []struct {
		name string
		st   Statement
	}{
		{"single SET, exact plan", &Update{Rel: "r",
			Set:   []SetClause{{Col: "v", E: divByV()}},
			Where: whereA()}},
		{"multi SET, error after first column written", &Update{Rel: "r",
			Set: []SetClause{
				{Col: "k", E: expr.Add(expr.Column("k"), expr.IntConst(1))},
				{Col: "v", E: divByV()},
			},
			Where: whereA()}},
		{"residual predicate error after earlier writes", &Update{Rel: "r",
			Set:   []SetClause{{Col: "v", E: expr.Add(expr.Column("v"), expr.IntConst(1))}},
			Where: expr.AndOf(whereA(), expr.Ge(divByV(), expr.IntConst(0)))}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := errorProneDB(600)
			ix := storage.NewIndexSet()
			// Build the hash index on g through a no-op delete so the
			// failing statement probes a maintained index rather than
			// triggering the first build itself.
			warm := &Delete{Rel: "r", Where: expr.Eq(expr.Column("g"), expr.StringConst("zzz"))}
			if err := storage.ApplyMutator(warm, db, ix); err != nil {
				t.Fatalf("warm-up delete: %v", err)
			}
			want := db.Clone()
			if err := storage.ApplyMutator(tc.st, db, ix); err == nil {
				t.Fatalf("expected a mid-relation evaluation error from %s", tc.st)
			}
			requireDatabasesEqual(t, "state after failed statement", want, db)
			// The store and index set must stay fully usable after the
			// rollback: a follow-up statement still matches the oracle.
			good := &Update{Rel: "r",
				Set:   []SetClause{{Col: "v", E: expr.Add(expr.Column("v"), expr.IntConst(7))}},
				Where: whereA()}
			naive := want.Clone()
			if err := applyNaiveStatement(t, good, naive); err != nil {
				t.Fatalf("oracle follow-up: %v", err)
			}
			if err := storage.ApplyMutator(good, db, ix); err != nil {
				t.Fatalf("indexed follow-up: %v", err)
			}
			requireDatabasesEqual(t, "follow-up after rollback", naive, db)
		})
	}
}

// TestIndexedApplySeqUnsafeSetVector pins the staging requirement
// behind the single-pass commit's seqSafe gate: the reference loop
// evaluates the whole SET vector against the pre-update tuple, so a
// SET expression reading a column an earlier SET clause writes must
// see the original value — such statements must stage, not write
// sequentially in place.
func TestIndexedApplySeqUnsafeSetVector(t *testing.T) {
	db := errorProneDB(600)
	naive := db.Clone()
	ix := storage.NewIndexSet()
	st := &Update{Rel: "r",
		Set: []SetClause{
			{Col: "k", E: expr.Add(expr.Column("k"), expr.IntConst(1))},
			// Reads k, which the clause above rewrites first in column
			// order: must still see the original k.
			{Col: "v", E: expr.Add(expr.Column("k"), expr.IntConst(1000))},
		},
		Where: expr.Eq(expr.Column("g"), expr.StringConst("a"))}
	if err := applyNaiveStatement(t, st, naive); err != nil {
		t.Fatalf("oracle: %v", err)
	}
	if err := storage.ApplyMutator(st, db, ix); err != nil {
		t.Fatalf("indexed: %v", err)
	}
	requireDatabasesEqual(t, "seq-unsafe SET vector", naive, db)
}
