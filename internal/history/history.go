package history

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/storage"
)

// Sentinel errors for invalid what-if queries, surfaced (wrapped with
// position detail) by ApplyModifications and therefore by every engine
// entry point; test with errors.Is.
var (
	// ErrPosOutOfRange reports a modification position outside the
	// history: replace/delete need 0 ≤ pos < len, insert 0 ≤ pos ≤ len.
	ErrPosOutOfRange = errors.New("modification position out of range")
	// ErrEmptyHistory reports a replace or delete against an empty
	// history (no statement exists to modify).
	ErrEmptyHistory = errors.New("history is empty")
)

// History is a sequence of statements H = u1, …, un.
type History []Statement

// Apply executes the history over db in order (the semantics
// D_i = u_i(D_{i-1}) of §2).
func (h History) Apply(db *storage.Database) error {
	return h.ApplyCtx(context.Background(), db)
}

// ApplyCtx is Apply under a context, checked between statements.
func (h History) ApplyCtx(ctx context.Context, db *storage.Database) error {
	for i, st := range h {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := st.Apply(db); err != nil {
			return fmt.Errorf("history: statement %d (%s): %w", i+1, st, err)
		}
	}
	return nil
}

// Restrict returns H_I: the subsequence at the given zero-based
// positions (positions must be ascending).
func (h History) Restrict(positions []int) History {
	out := make(History, 0, len(positions))
	for _, p := range positions {
		out = append(out, h[p])
	}
	return out
}

// Suffix returns H_{from+1,n} (zero-based: statements from index
// `from` onward).
func (h History) Suffix(from int) History { return h[from:] }

// Relations returns the set of relation names modified by the history.
func (h History) Relations() map[string]bool {
	out := map[string]bool{}
	for _, st := range h {
		out[strings.ToLower(st.Table())] = true
	}
	return out
}

// OnRelation returns the zero-based positions of statements that modify
// rel.
func (h History) OnRelation(rel string) []int {
	var out []int
	for i, st := range h {
		if strings.EqualFold(st.Table(), rel) {
			out = append(out, i)
		}
	}
	return out
}

// TupleIndependent reports whether every statement is tuple independent.
func (h History) TupleIndependent() bool {
	for _, st := range h {
		if !st.TupleIndependent() {
			return false
		}
	}
	return true
}

// String renders the history one statement per line.
func (h History) String() string {
	var b strings.Builder
	for i, st := range h {
		fmt.Fprintf(&b, "%3d: %s\n", i+1, st)
	}
	return b.String()
}

// Modification is one element of the modification sequence M of a
// historical what-if query (§3): replace a statement, insert a new
// statement, or delete an existing one. Positions are zero-based and
// interpreted against the history as already modified by the preceding
// modifications in the sequence.
type Modification interface {
	String() string
	isModification()
}

// Replace substitutes the statement at Pos with Stmt (u ← u').
type Replace struct {
	Pos  int
	Stmt Statement
}

// InsertStmt inserts Stmt so that it executes at position Pos
// (ins_i(u)).
type InsertStmt struct {
	Pos  int
	Stmt Statement
}

// DeleteStmt removes the statement at Pos (del(i)).
type DeleteStmt struct {
	Pos int
}

func (Replace) isModification()    {}
func (InsertStmt) isModification() {}
func (DeleteStmt) isModification() {}

func (m Replace) String() string    { return fmt.Sprintf("replace %d with [%s]", m.Pos+1, m.Stmt) }
func (m InsertStmt) String() string { return fmt.Sprintf("insert [%s] at %d", m.Stmt, m.Pos+1) }
func (m DeleteStmt) String() string { return fmt.Sprintf("delete %d", m.Pos+1) }

// PaddedPair aligns the original and modified histories position by
// position after the no-op rewrite of §6: both histories have the same
// length, statements at unmodified positions are identical, and every
// modification is a same-class replacement. This normal form is what
// data slicing and program slicing operate on.
type PaddedPair struct {
	Orig History
	Mod  History
	// ModifiedPos lists the positions where Orig and Mod differ,
	// ascending.
	ModifiedPos []int
}

// ApplyModifications rewrites (H, M) into a PaddedPair. Statement
// insertion pads the original history with a same-class no-op;
// statement deletion replaces the modified side with a no-op; replacing
// a statement with one of a different class is rewritten into
// delete+insert (two aligned positions) per §6.
func ApplyModifications(h History, mods []Modification) (*PaddedPair, error) {
	orig := make(History, len(h))
	copy(orig, h)
	mod := make(History, len(h))
	copy(mod, h)
	changed := map[int]bool{}

	insertAt := func(pos int, o, m Statement) error {
		if pos < 0 || pos > len(orig) {
			return fmt.Errorf("history: insert position %d out of range [0,%d]: %w", pos, len(orig), ErrPosOutOfRange)
		}
		orig = append(orig[:pos], append(History{o}, orig[pos:]...)...)
		mod = append(mod[:pos], append(History{m}, mod[pos:]...)...)
		shifted := map[int]bool{}
		for p := range changed {
			if p >= pos {
				shifted[p+1] = true
			} else {
				shifted[p] = true
			}
		}
		changed = shifted
		changed[pos] = true
		return nil
	}

	for _, m := range mods {
		switch x := m.(type) {
		case Replace:
			if len(mod) == 0 {
				return nil, fmt.Errorf("history: replace of statement %d: %w", x.Pos+1, ErrEmptyHistory)
			}
			if x.Pos < 0 || x.Pos >= len(mod) {
				return nil, fmt.Errorf("history: replace position %d out of range [0,%d): %w", x.Pos, len(mod), ErrPosOutOfRange)
			}
			if SameClass(orig[x.Pos], x.Stmt) {
				mod[x.Pos] = x.Stmt
				changed[x.Pos] = true
				break
			}
			// Cross-class replacement = delete original + insert new.
			mod[x.Pos] = NoOpFor(orig[x.Pos])
			changed[x.Pos] = true
			if err := insertAt(x.Pos+1, NoOpFor(x.Stmt), x.Stmt); err != nil {
				return nil, err
			}
		case InsertStmt:
			if err := insertAt(x.Pos, NoOpFor(x.Stmt), x.Stmt); err != nil {
				return nil, err
			}
		case DeleteStmt:
			if len(mod) == 0 {
				return nil, fmt.Errorf("history: delete of statement %d: %w", x.Pos+1, ErrEmptyHistory)
			}
			if x.Pos < 0 || x.Pos >= len(mod) {
				return nil, fmt.Errorf("history: delete position %d out of range [0,%d): %w", x.Pos, len(mod), ErrPosOutOfRange)
			}
			mod[x.Pos] = NoOpFor(orig[x.Pos])
			changed[x.Pos] = true
		default:
			return nil, fmt.Errorf("history: unknown modification %T", m)
		}
	}

	pp := &PaddedPair{Orig: orig, Mod: mod}
	for p := 0; p < len(orig); p++ {
		if changed[p] {
			pp.ModifiedPos = append(pp.ModifiedPos, p)
		}
	}
	if len(pp.ModifiedPos) == 0 {
		return nil, fmt.Errorf("history: modification sequence is empty or only touches nothing")
	}
	return pp, nil
}

// FirstModified returns the earliest modified position.
func (p *PaddedPair) FirstModified() int { return p.ModifiedPos[0] }

// SuffixFrom cuts both histories at position `from`, re-basing the
// modified positions. The prefix before the first modified statement is
// common to both histories, so (per §4's WLOG argument) evaluation can
// start from the database version at that point.
func (p *PaddedPair) SuffixFrom(from int) *PaddedPair {
	out := &PaddedPair{Orig: p.Orig.Suffix(from), Mod: p.Mod.Suffix(from)}
	for _, m := range p.ModifiedPos {
		if m >= from {
			out.ModifiedPos = append(out.ModifiedPos, m-from)
		}
	}
	return out
}

// RestrictToRelation keeps only statement positions touching rel,
// returning the aligned sub-histories and a map from new to original
// positions. Modified positions on other relations are dropped.
func (p *PaddedPair) RestrictToRelation(rel string) (*PaddedPair, []int) {
	positions := p.Orig.OnRelation(rel)
	modSet := map[int]bool{}
	for _, m := range p.ModifiedPos {
		modSet[m] = true
	}
	out := &PaddedPair{
		Orig: p.Orig.Restrict(positions),
		Mod:  p.Mod.Restrict(positions),
	}
	for newPos, origPos := range positions {
		if modSet[origPos] {
			out.ModifiedPos = append(out.ModifiedPos, newPos)
		}
	}
	return out, positions
}
