package history

import (
	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/types"
)

// Params returns the set of template parameter names ($name slots)
// appearing in a statement's expressions. INSERT … VALUES rows are
// concrete tuples and can never carry parameters.
func Params(st Statement) map[string]bool {
	out := map[string]bool{}
	add := func(e expr.Expr) {
		for name := range expr.Params(e) {
			out[name] = true
		}
	}
	switch x := st.(type) {
	case *Update:
		for _, sc := range x.Set {
			add(sc.E)
		}
		add(x.Where)
	case *Delete:
		add(x.Where)
	case *InsertQuery:
		for name := range algebra.Params(x.Query) {
			out[name] = true
		}
	}
	return out
}

// SubstParams returns st with every template parameter replaced by its
// bound constant. Statements without parameters are returned as-is;
// param-bearing statements are rebuilt (fresh memo, so the compiled
// single-statement application cache never keys on an open slot).
func SubstParams(st Statement, b map[string]types.Value) Statement {
	if len(b) == 0 {
		return st
	}
	switch x := st.(type) {
	case *Update:
		where := expr.SubstParams(x.Where, b)
		var set []SetClause
		for i, sc := range x.Set {
			e := expr.SubstParams(sc.E, b)
			if e != sc.E && set == nil {
				set = append([]SetClause(nil), x.Set...)
			}
			if set != nil {
				set[i] = SetClause{Col: sc.Col, E: e}
			}
		}
		if where == x.Where && set == nil {
			return st
		}
		if set == nil {
			set = x.Set
		}
		return &Update{Rel: x.Rel, Set: set, Where: where}
	case *Delete:
		where := expr.SubstParams(x.Where, b)
		if where == x.Where {
			return st
		}
		return &Delete{Rel: x.Rel, Where: where}
	case *InsertQuery:
		q := algebra.SubstParams(x.Query, b)
		if q == x.Query {
			return st
		}
		return &InsertQuery{Rel: x.Rel, Query: q}
	}
	return st
}

// SubstModParams returns m with every template parameter in its
// statement replaced by its bound constant.
func SubstModParams(m Modification, b map[string]types.Value) Modification {
	switch x := m.(type) {
	case Replace:
		return Replace{Pos: x.Pos, Stmt: SubstParams(x.Stmt, b)}
	case InsertStmt:
		return InsertStmt{Pos: x.Pos, Stmt: SubstParams(x.Stmt, b)}
	}
	return m
}

// ModParams returns the union of parameter names across a modification
// sequence.
func ModParams(mods []Modification) map[string]bool {
	out := map[string]bool{}
	for _, m := range mods {
		var st Statement
		switch x := m.(type) {
		case Replace:
			st = x.Stmt
		case InsertStmt:
			st = x.Stmt
		default:
			continue
		}
		for name := range Params(st) {
			out[name] = true
		}
	}
	return out
}
