package history

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// applyNaiveStatement runs st against db through the reference
// per-tuple loops, bypassing the compiled routing — the oracle of the
// compiled-application property.
func applyNaiveStatement(t *testing.T, st Statement, db *storage.Database) error {
	t.Helper()
	switch x := st.(type) {
	case *Update:
		rel, err := db.Relation(x.Rel)
		if err != nil {
			return err
		}
		vec, err := x.setVector(rel.Schema)
		if err != nil {
			return err
		}
		if err := expr.Validate(x.Where, rel.Schema); err != nil {
			return err
		}
		for _, sc := range x.Set {
			if err := expr.Validate(sc.E, rel.Schema); err != nil {
				return err
			}
		}
		return x.applyNaive(rel, vec)
	case *Delete:
		rel, err := db.Relation(x.Rel)
		if err != nil {
			return err
		}
		if err := expr.Validate(x.Where, rel.Schema); err != nil {
			return err
		}
		return x.applyNaive(rel)
	case *InsertValues:
		return x.Apply(db) // constant insert: no compiled path exists
	case *InsertQuery:
		return x.applyNaive(db)
	}
	t.Fatalf("unknown statement %T", st)
	return nil
}

// applyCols builds the two-relation test schema shared by the random
// application scenarios.
func applyCols() []schema.Column {
	return []schema.Column{
		schema.Col("k", types.KindInt),
		schema.Col("v", types.KindInt),
		schema.Col("g", types.KindString),
	}
}

// randomApplyDB builds relations r (populated, with NULLs and
// duplicates) and w (small) over the shared schema.
func randomApplyDB(rng *rand.Rand, rows int) *storage.Database {
	db := storage.NewDatabase()
	groups := []string{"a", "b", "c"}
	r := storage.NewRelation(schema.New("r", applyCols()...))
	for i := 0; i < rows; i++ {
		k := types.Value(types.Int(int64(rng.Intn(40))))
		v := types.Value(types.Int(int64(rng.Intn(40))))
		if rng.Intn(12) == 0 {
			v = types.Null()
		}
		if rng.Intn(15) == 0 {
			k = types.Null()
		}
		r.Add(schema.NewTuple(k, v, types.String(groups[rng.Intn(len(groups))])))
	}
	db.AddRelation(r)
	w := storage.NewRelation(schema.New("w", applyCols()...))
	for i := 0; i < rng.Intn(5); i++ {
		w.Add(schema.NewTuple(types.Int(int64(i)), types.Int(int64(rng.Intn(10))), types.String("w")))
	}
	db.AddRelation(w)
	return db
}

func randomApplyCond(rng *rand.Rand) expr.Expr {
	col := []string{"k", "v"}[rng.Intn(2)]
	cmp := []func(l, r expr.Expr) *expr.Cmp{expr.Ge, expr.Lt, expr.Eq}[rng.Intn(3)]
	base := expr.Expr(cmp(expr.Column(col), expr.IntConst(int64(rng.Intn(40)))))
	switch rng.Intn(4) {
	case 0:
		return expr.AndOf(base, expr.Eq(expr.Column("g"), expr.StringConst([]string{"a", "b", "c"}[rng.Intn(3)])))
	case 1:
		return expr.OrOf(base, expr.Lt(expr.Column("v"), expr.IntConst(int64(rng.Intn(15)))))
	case 2:
		return expr.OrOf(base, &expr.IsNull{E: expr.Column("v")})
	}
	return base
}

func randomApplyStatement(rng *rand.Rand, i int) Statement {
	rel := "r"
	if rng.Intn(4) == 0 {
		rel = "w"
	}
	switch rng.Intn(8) {
	case 0:
		return &Delete{Rel: rel, Where: randomApplyCond(rng)}
	case 1:
		return &InsertValues{Rel: rel, Rows: []schema.Tuple{
			schema.NewTuple(types.Int(int64(100+i)), types.Int(int64(rng.Intn(40))), types.String("a")),
			schema.NewTuple(types.Int(int64(200+i)), types.Null(), types.String("b")),
		}}
	case 2:
		src := "w"
		if rel == "w" {
			src = "r"
		}
		return &InsertQuery{Rel: rel, Query: &algebra.Select{
			Cond: randomApplyCond(rng),
			In:   &algebra.Scan{Rel: src},
		}}
	default:
		set := []SetClause{{Col: "v", E: expr.Add(expr.Column("v"), expr.IntConst(int64(1+rng.Intn(5))))}}
		if rng.Intn(3) == 0 {
			set = []SetClause{
				{Col: "v", E: expr.IntConst(int64(rng.Intn(25)))},
				{Col: "k", E: expr.Add(expr.Column("k"), expr.IntConst(1))},
			}
		}
		return &Update{Rel: rel, Set: set, Where: randomApplyCond(rng)}
	}
}

// requireDatabasesEqual compares two databases relation by relation,
// tuple by tuple — order included, since compiled application must
// reproduce the naive loops' output exactly, not just as a bag.
func requireDatabasesEqual(t *testing.T, label string, want, got *storage.Database) {
	t.Helper()
	for _, name := range want.RelationNames() {
		wr, err := want.Relation(name)
		if err != nil {
			t.Fatal(err)
		}
		gr, err := got.Relation(name)
		if err != nil {
			t.Fatalf("%s: relation %s missing: %v", label, name, err)
		}
		if len(wr.Tuples) != len(gr.Tuples) {
			t.Fatalf("%s: relation %s has %d tuples, want %d\nnaive:\n%s\ncompiled:\n%s",
				label, name, len(gr.Tuples), len(wr.Tuples), wr, gr)
		}
		for i := range wr.Tuples {
			if !wr.Tuples[i].Equal(gr.Tuples[i]) {
				t.Fatalf("%s: relation %s tuple %d = %s, want %s", label, name, i, gr.Tuples[i], wr.Tuples[i])
			}
		}
	}
}

// TestCompiledApplyEquivalence is the compiled-statement-application
// property: for randomized histories of every statement class, applying
// each statement through Apply (compiled routing) and through the naive
// loops yields identical database states after every statement, and
// identical error behavior.
func TestCompiledApplyEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	trials := 40
	if testing.Short() {
		trials = 10
	}
	for trial := 0; trial < trials; trial++ {
		// Row counts straddle the executor's batch boundary so the
		// routed path exercises 0-, 1-, and multi-batch relations.
		rows := []int{0, 1, 37, 80, 1023, 1025}[rng.Intn(6)]
		base := randomApplyDB(rng, rows)
		naiveDB := base.Clone()
		fastDB := base.Clone()
		for i := 0; i < 6; i++ {
			st := randomApplyStatement(rng, i)
			errN := applyNaiveStatement(t, st, naiveDB)
			errF := st.Apply(fastDB)
			if (errN == nil) != (errF == nil) {
				t.Fatalf("trial %d: error divergence on %s: naive=%v compiled=%v", trial, st, errN, errF)
			}
			if errN != nil {
				break
			}
			requireDatabasesEqual(t, fmt.Sprintf("trial %d after %s", trial, st), naiveDB, fastDB)
		}
	}
}

// TestCompiledApplyAllVersionPositions pins the routed application
// through the versioned store: every version of a random history
// reconstructed by time travel must equal the state reached by naive
// statement application, at every position 0..n.
func TestCompiledApplyAllVersionPositions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		base := randomApplyDB(rng, 60)
		vdb := storage.NewVersioned(base)
		// Naive ground-truth states, one per version.
		states := []*storage.Database{base.Clone()}
		cur := base.Clone()
		n := 1 + rng.Intn(7)
		for i := 0; i < n; i++ {
			st := randomApplyStatement(rng, i)
			next := cur.Clone()
			if err := applyNaiveStatement(t, st, next); err != nil {
				continue // skip statements that error; they never enter a log
			}
			if err := vdb.Apply(st); err != nil {
				t.Fatalf("trial %d: versioned apply of %s: %v", trial, st, err)
			}
			cur = next
			states = append(states, cur.Clone())
		}
		for ver := 0; ver < len(states); ver++ {
			got, err := vdb.Version(ver)
			if err != nil {
				t.Fatalf("trial %d: version %d: %v", trial, ver, err)
			}
			requireDatabasesEqual(t, fmt.Sprintf("trial %d version %d", trial, ver), states[ver], got)
		}
	}
}

// TestApplyFallbackOutsideCompilableSubset: a statement outside the
// compilable subset (symbolic variable in the condition) must route to
// the naive loop and surface that loop's evaluation error — never a
// compile-stage panic. (The compiler and the interpreter reject the
// same expression subset, so there is no case where only the fallback
// succeeds; the property being pinned is that rejection degrades to the
// reference path.)
func TestApplyFallbackOutsideCompilableSubset(t *testing.T) {
	db := randomApplyDB(rand.New(rand.NewSource(1)), 10)
	st := &Update{Rel: "r", Set: []SetClause{{Col: "v", E: expr.IntConst(1)}},
		Where: expr.Eq(expr.Variable("x0"), expr.IntConst(1))}
	if err := st.Apply(db); err == nil {
		t.Fatal("expected an error applying a symbolic-condition update")
	}
}

// TestAllIdentityUpdateStillEvaluatesWhere is the regression test for
// the degenerate UPDATE whose every SET column is an identity (SET a =
// a): the compiled projection would collapse to a passthrough scan and
// never evaluate θ, so this shape must take the naive loop and surface
// θ's evaluation errors exactly like the oracle — here a division by
// zero on a row with v = 0.
func TestAllIdentityUpdateStillEvaluatesWhere(t *testing.T) {
	build := func() *storage.Database {
		db := storage.NewDatabase()
		r := storage.NewRelation(schema.New("r", applyCols()...))
		r.Add(
			schema.NewTuple(types.Int(1), types.Int(5), types.String("a")),
			schema.NewTuple(types.Int(2), types.Int(0), types.String("b")),
		)
		db.AddRelation(r)
		return db
	}
	st := &Update{Rel: "r",
		Set:   []SetClause{{Col: "k", E: expr.Column("k")}},
		Where: expr.Eq(expr.Div(expr.IntConst(10), expr.Column("v")), expr.IntConst(2))}
	errFast := st.Apply(build())
	db := build()
	rel, _ := db.Relation("r")
	vec, err := st.setVector(rel.Schema)
	if err != nil {
		t.Fatal(err)
	}
	errNaive := st.applyNaive(rel, vec)
	if errNaive == nil {
		t.Fatal("naive oracle did not error on division by zero in WHERE")
	}
	if errFast == nil {
		t.Fatalf("Apply dropped the WHERE evaluation error the naive loop surfaces (%v)", errNaive)
	}
}

// TestApplyProgramMemoReuse pins the per-statement program cache: the
// same statement applied across layout-equal database clones (the
// redo-log replay pattern) stays correct, and a later application
// against a different schema layout recompiles rather than running the
// stale program.
func TestApplyProgramMemoReuse(t *testing.T) {
	st := &Update{Rel: "r",
		Set:   []SetClause{{Col: "v", E: expr.Add(expr.Column("v"), expr.IntConst(1))}},
		Where: expr.Ge(expr.Column("k"), expr.IntConst(0))}
	base := randomApplyDB(rand.New(rand.NewSource(3)), 20)
	for i := 0; i < 3; i++ { // replay across clones: memo hit path
		db := base.Clone()
		naive := base.Clone()
		if err := st.Apply(db); err != nil {
			t.Fatalf("apply %d: %v", i, err)
		}
		if err := applyNaiveStatement(t, st, naive); err != nil {
			t.Fatalf("naive %d: %v", i, err)
		}
		requireDatabasesEqual(t, "memo reuse", naive, db)
	}
	// Same statement against a reordered layout: v at a new ordinal.
	db2 := storage.NewDatabase()
	r2 := storage.NewRelation(schema.New("r",
		schema.Col("v", types.KindInt), schema.Col("k", types.KindInt)))
	r2.Add(schema.NewTuple(types.Int(7), types.Int(1)))
	db2.AddRelation(r2)
	if err := st.Apply(db2); err != nil {
		t.Fatal(err)
	}
	got, _ := db2.Relation("r")
	want := schema.NewTuple(types.Int(8), types.Int(1))
	if !got.Tuples[0].Equal(want) {
		t.Fatalf("after layout change got %s, want %s", got.Tuples[0], want)
	}
}
