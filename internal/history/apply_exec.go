// Compiled statement application: Update, Delete, and INSERT…SELECT
// route through single-statement reenactment programs evaluated by the
// vectorized executor, so time-travel replay (storage.VersionCtx /
// SnapshotCtx extension) and the naive algorithm's history execution
// run at executor speed instead of allocating an expr.Env per tuple.
//
// Semantics are pinned to the naive per-tuple loops: the compiled form
// of U_{Set,θ} is the generalized projection Π with per-attribute
// IF θ THEN e ELSE col (evaluating the WHERE condition and the SET
// expressions over exactly the rows the loop evaluates them on), D_θ is
// σ_{¬θ}, and I_Q evaluates Q through the executor that the
// differential tests hold equal to the interpreter. Statements outside
// the compilable subset fall back to the naive loops, so routing can
// change speed but never observable behavior — the property tests in
// apply_exec_test.go enforce this over randomized histories at every
// version position.
package history

import (
	"errors"
	"strings"
	"sync"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/exec"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// progMemo caches a statement's compiled program. Statements are
// immutable once logged but replayed many times (every VersionCtx /
// snapshot extension walks the redo log), so compiling per Apply would
// waste the win on short relations. The cache is guarded by the target
// relation's schema layout: database clones carry fresh *Schema values,
// and a program compiled against one layout runs against any
// layout-equal relation (kernels address column ordinals; runtime
// dispatch is value-kind based). Only single-relation statement queries
// (UPDATE's Π, DELETE's σ over their own scan) are memoized — an
// INSERT…SELECT query may scan several relations, which one schema
// cannot guard.
type progMemo struct {
	mu sync.Mutex
	// sch is the layout the outcome below was computed for. A non-nil
	// sch with a nil prog caches a compilation failure (including the
	// deliberate all-identity fallback), so non-compilable statements
	// pay one compile attempt per layout, not one per replayed Apply.
	sch  *schema.Schema
	prog *exec.Program

	// Indexed-apply caches (see apply_indexed.go). The analysis — the
	// index-independent half of the plan — is guarded by schema layout
	// like the program above. The bound plan additionally depends on
	// WHICH indexes exist, so its key is the IndexSet's identity and
	// availability epoch: a plan bound when an index existed (or was
	// known absent) is stale the moment availability changes — builds,
	// drops, and invalidations all bump the epoch — and schema layout
	// alone could never detect that. Only successful bindings are
	// cached; a nil bind re-checks on the next Apply (it is a handful
	// of map lookups) so an index built later is picked up without any
	// epoch traffic.
	anaSch    *schema.Schema
	ana       *applyAnalysis
	bindIx    *storage.IndexSet
	bindEpoch uint64
	bound     *boundPlan
}

// analysis returns the cached indexed-apply analysis for a
// layout-equal schema, computing and caching it (nil included) on
// layout change.
func (m *progMemo) analysis(sch *schema.Schema, build func() *applyAnalysis) *applyAnalysis {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.anaSch != nil && m.anaSch.Equal(sch) {
		return m.ana
	}
	m.anaSch, m.ana = sch, build()
	// A new layout invalidates any bound plan regardless of epoch.
	m.bindIx, m.bound = nil, nil
	return m.ana
}

// bind returns the plan bound against ix at its current availability
// epoch, rebinding when the set or its epoch moved.
func (m *progMemo) bind(a *applyAnalysis, ix *storage.IndexSet, relName string, rel *storage.Relation) *boundPlan {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.bound != nil && m.bindIx == ix && m.bindEpoch == ix.Epoch() {
		return m.bound
	}
	m.bindIx, m.bound = nil, nil
	p := bindPlan(a, ix, relName, rel)
	if p != nil {
		// Binding may have built indexes (bumping the epoch); key the
		// cache on the post-build epoch.
		m.bindIx, m.bindEpoch, m.bound = ix, ix.Epoch(), p
	}
	return p
}

// program returns the cached outcome for a layout-equal schema, or
// compiles (holding the lock — compilation is microseconds) and caches
// the outcome either way. nil means the statement is outside the
// compilable subset for this layout.
func (m *progMemo) program(sch *schema.Schema, compile func() (*exec.Program, error)) *exec.Program {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sch != nil && m.sch.Equal(sch) {
		return m.prog
	}
	m.sch, m.prog = nil, nil
	prog, err := compile()
	if err != nil {
		m.sch = sch
		return nil
	}
	m.sch, m.prog = sch, prog
	return prog
}

// applyCompiled executes the update as Π over the base scan and swaps
// the relation's tuples. done is false when the statement is outside
// the compilable subset and the caller must run the naive loop.
func (u *Update) applyCompiled(db *storage.Database, rel *storage.Relation, vec []expr.Expr) (done bool, err error) {
	prog := u.memo.program(rel.Schema, func() (*exec.Program, error) {
		exprs := make([]algebra.NamedExpr, len(vec))
		wrapped := false
		for i, c := range rel.Schema.Columns {
			if col, ok := vec[i].(*expr.Col); ok && strings.EqualFold(col.Name, c.Name) {
				// Identity column: no conditional needed.
				exprs[i] = algebra.NamedExpr{Name: c.Name, E: vec[i]}
				continue
			}
			wrapped = true
			exprs[i] = algebra.NamedExpr{
				Name: c.Name,
				E:    expr.IfThenElse(u.Where, vec[i], expr.Column(c.Name)),
			}
		}
		if !wrapped {
			// Every SET column is an identity: the projection would
			// collapse to a passthrough scan and θ would never be
			// evaluated — silently dropping WHERE evaluation errors the
			// naive loop surfaces (e.g. a division by zero in θ). Let
			// the oracle loop handle this degenerate shape.
			return nil, errAllIdentity
		}
		return exec.CompileVec(&algebra.Project{Exprs: exprs, In: &algebra.Scan{Rel: u.Rel}}, db, exec.VecOptions{})
	})
	if prog == nil {
		return false, nil
	}
	res, err := prog.Run(db)
	if err != nil {
		return true, err
	}
	rel.Tuples = res.Tuples
	return true, nil
}

// errAllIdentity marks the all-identity UPDATE shape that must take the
// naive loop so θ still evaluates per row.
var errAllIdentity = errors.New("history: all-identity update routes to the naive loop")

// applyCompiled executes the delete as σ_{¬θ} over the base scan.
func (d *Delete) applyCompiled(db *storage.Database, rel *storage.Relation) (done bool, err error) {
	prog := d.memo.program(rel.Schema, func() (*exec.Program, error) {
		q := &algebra.Select{Cond: expr.Negation(d.Where), In: &algebra.Scan{Rel: d.Rel}}
		return exec.CompileVec(q, db, exec.VecOptions{})
	})
	if prog == nil {
		return false, nil
	}
	res, err := prog.Run(db)
	if err != nil {
		return true, err
	}
	rel.Tuples = res.Tuples
	return true, nil
}

// evalStatementQuery evaluates an INSERT…SELECT query through the
// vectorized executor, falling back to the interpreter outside the
// compilable subset.
func evalStatementQuery(q algebra.Query, db *storage.Database) (*storage.Relation, error) {
	prog, err := exec.CompileVec(q, db, exec.VecOptions{})
	if err != nil {
		return algebra.Eval(q, db)
	}
	return prog.Run(db)
}
