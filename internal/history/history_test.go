package history

import (
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// ordersDB builds the paper's running example instance (Fig. 1).
func ordersDB() *storage.Database {
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
	r := storage.NewRelation(s)
	r.Add(
		schema.Tuple{types.Int(11), types.String("UK"), types.Int(20), types.Int(5)},
		schema.Tuple{types.Int(12), types.String("UK"), types.Int(50), types.Int(5)},
		schema.Tuple{types.Int(13), types.String("US"), types.Int(60), types.Int(3)},
		schema.Tuple{types.Int(14), types.String("US"), types.Int(30), types.Int(4)},
	)
	db := storage.NewDatabase()
	db.AddRelation(r)
	return db
}

func feeOf(t *testing.T, db *storage.Database, id int64) int64 {
	t.Helper()
	r, err := db.Relation("orders")
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range r.Tuples {
		if tup[0].AsInt() == id {
			return tup[3].AsInt()
		}
	}
	t.Fatalf("no order %d", id)
	return 0
}

func paperHistory() History {
	return History{
		&Update{Rel: "orders",
			Set:   []SetClause{{Col: "fee", E: expr.IntConst(0)}},
			Where: expr.Ge(expr.Column("price"), expr.IntConst(50))},
		&Update{Rel: "orders",
			Set:   []SetClause{{Col: "fee", E: expr.Add(expr.Column("fee"), expr.IntConst(5))}},
			Where: expr.AndOf(expr.Eq(expr.Column("country"), expr.StringConst("UK")), expr.Le(expr.Column("price"), expr.IntConst(100)))},
		&Update{Rel: "orders",
			Set:   []SetClause{{Col: "fee", E: expr.Sub(expr.Column("fee"), expr.IntConst(2))}},
			Where: expr.AndOf(expr.Le(expr.Column("price"), expr.IntConst(30)), expr.Ge(expr.Column("fee"), expr.IntConst(10)))},
	}
}

// TestPaperHistorySemantics reproduces Fig. 3 exactly.
func TestPaperHistorySemantics(t *testing.T) {
	db := ordersDB()
	if err := paperHistory().Apply(db); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{11: 8, 12: 5, 13: 0, 14: 4}
	for id, fee := range want {
		if got := feeOf(t, db, id); got != fee {
			t.Errorf("order %d fee = %d, want %d", id, got, fee)
		}
	}
}

// TestPaperModifiedHistory reproduces Fig. 4: u1 with threshold 60.
func TestPaperModifiedHistory(t *testing.T) {
	h := paperHistory()
	h[0] = &Update{Rel: "orders",
		Set:   []SetClause{{Col: "fee", E: expr.IntConst(0)}},
		Where: expr.Ge(expr.Column("price"), expr.IntConst(60))}
	db := ordersDB()
	if err := h.Apply(db); err != nil {
		t.Fatal(err)
	}
	want := map[int64]int64{11: 8, 12: 10, 13: 0, 14: 4}
	for id, fee := range want {
		if got := feeOf(t, db, id); got != fee {
			t.Errorf("order %d fee = %d, want %d", id, got, fee)
		}
	}
}

func TestDeleteApply(t *testing.T) {
	db := ordersDB()
	d := &Delete{Rel: "orders", Where: expr.Ge(expr.Column("price"), expr.IntConst(50))}
	if err := d.Apply(db); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("orders")
	if r.Len() != 2 {
		t.Errorf("after delete: %d tuples", r.Len())
	}
}

func TestInsertValuesApply(t *testing.T) {
	db := ordersDB()
	iv := &InsertValues{Rel: "orders", Rows: []schema.Tuple{
		{types.Int(15), types.String("DE"), types.Int(70), types.Int(2)},
	}}
	if err := iv.Apply(db); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("orders")
	if r.Len() != 5 {
		t.Errorf("after insert: %d tuples", r.Len())
	}
	// Arity mismatch must error.
	bad := &InsertValues{Rel: "orders", Rows: []schema.Tuple{{types.Int(1)}}}
	if err := bad.Apply(db); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestInsertQueryApply(t *testing.T) {
	db := ordersDB()
	// Re-insert expensive orders (a self-referencing INSERT…SELECT).
	iq := &InsertQuery{Rel: "orders", Query: &algebra.Select{
		Cond: expr.Ge(expr.Column("price"), expr.IntConst(60)),
		In:   &algebra.Scan{Rel: "orders"},
	}}
	if err := iq.Apply(db); err != nil {
		t.Fatal(err)
	}
	r, _ := db.Relation("orders")
	if r.Len() != 5 {
		t.Errorf("after insert-select: %d tuples", r.Len())
	}
}

func TestUpdateUnknownColumnErrors(t *testing.T) {
	db := ordersDB()
	u := &Update{Rel: "orders", Set: []SetClause{{Col: "nope", E: expr.IntConst(1)}}, Where: expr.True}
	if err := u.Apply(db); err == nil {
		t.Error("unknown SET column accepted")
	}
	u2 := &Update{Rel: "orders", Set: []SetClause{{Col: "fee", E: expr.IntConst(1)}},
		Where: expr.Ge(expr.Column("nope"), expr.IntConst(1))}
	if err := u2.Apply(db); err == nil {
		t.Error("unknown WHERE column accepted")
	}
}

func TestTupleIndependence(t *testing.T) {
	// Lemma 1: updates, deletes, constant inserts are tuple independent;
	// inserts with query are not.
	if !(&Update{}).TupleIndependent() || !(&Delete{}).TupleIndependent() || !(&InsertValues{}).TupleIndependent() {
		t.Error("Lemma 1 classes wrong")
	}
	if (&InsertQuery{}).TupleIndependent() {
		t.Error("I_Q must not be tuple independent")
	}
}

// TestTupleIndependenceSemantics verifies Def. 1 empirically: applying
// a statement to the whole relation equals the union of applying it to
// each singleton.
func TestTupleIndependenceSemantics(t *testing.T) {
	stmts := []Statement{
		&Update{Rel: "orders", Set: []SetClause{{Col: "fee", E: expr.IntConst(0)}},
			Where: expr.Ge(expr.Column("price"), expr.IntConst(50))},
		&Delete{Rel: "orders", Where: expr.Lt(expr.Column("price"), expr.IntConst(40))},
	}
	for _, st := range stmts {
		whole := ordersDB()
		if err := st.Apply(whole); err != nil {
			t.Fatal(err)
		}
		wr, _ := whole.Relation("orders")

		union := storage.NewRelation(wr.Schema)
		base, _ := ordersDB().Relation("orders")
		for _, tup := range base.Tuples {
			single := storage.NewDatabase()
			sr := storage.NewRelation(base.Schema)
			sr.Add(tup.Clone())
			single.AddRelation(sr)
			if err := st.Apply(single); err != nil {
				t.Fatal(err)
			}
			out, _ := single.Relation("orders")
			union.Tuples = append(union.Tuples, out.Tuples...)
		}
		if !wr.EqualAsBag(union) {
			t.Errorf("%s is not tuple independent:\nwhole: %s\nunion: %s", st, wr, union)
		}
	}
}

func TestNoOpFor(t *testing.T) {
	cases := []Statement{
		&Update{Rel: "t", Set: []SetClause{{Col: "a", E: expr.IntConst(1)}}, Where: expr.True},
		&Delete{Rel: "t", Where: expr.True},
		&InsertValues{Rel: "t", Rows: []schema.Tuple{{types.Int(1)}}},
		&InsertQuery{Rel: "t", Query: &algebra.Scan{Rel: "t"}},
	}
	for _, st := range cases {
		no := NoOpFor(st)
		if no == nil || !no.IsNoOp() {
			t.Errorf("NoOpFor(%T) = %v", st, no)
		}
		if !SameClass(st, no) {
			t.Errorf("NoOpFor(%T) changed class", st)
		}
	}
}

func TestSameClass(t *testing.T) {
	u := &Update{Rel: "t"}
	if SameClass(u, &Update{Rel: "other"}) {
		t.Error("different relations must not be same class")
	}
	if SameClass(u, &Delete{Rel: "t"}) {
		t.Error("update vs delete must differ")
	}
	if !SameClass(&InsertValues{Rel: "t"}, &InsertQuery{Rel: "t"}) {
		t.Error("both insert flavors form one class")
	}
}
