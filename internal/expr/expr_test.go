package expr

import (
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

func tupleEnv(cols []string, vals ...types.Value) *Env {
	sc := make([]schema.Column, len(cols))
	for i, c := range cols {
		sc[i] = schema.Col(c, vals[i].Kind())
	}
	return TupleEnv(schema.New("t", sc...), schema.Tuple(vals))
}

func evalOK(t *testing.T, e Expr, env *Env) types.Value {
	t.Helper()
	v, err := Eval(e, env)
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestEvalConstantsAndColumns(t *testing.T) {
	env := tupleEnv([]string{"a", "b"}, types.Int(3), types.String("x"))
	if v := evalOK(t, IntConst(7), env); v.AsInt() != 7 {
		t.Errorf("const = %v", v)
	}
	if v := evalOK(t, Column("a"), env); v.AsInt() != 3 {
		t.Errorf("col a = %v", v)
	}
	if v := evalOK(t, Column("B"), env); v.AsString() != "x" {
		t.Errorf("case-insensitive col B = %v", v)
	}
	if _, err := Eval(Column("nope"), env); err == nil {
		t.Error("unknown column must error")
	}
}

func TestEvalArithmetic(t *testing.T) {
	env := tupleEnv([]string{"a"}, types.Int(10))
	cases := []struct {
		e    Expr
		want types.Value
	}{
		{Add(Column("a"), IntConst(5)), types.Int(15)},
		{Sub(Column("a"), IntConst(5)), types.Int(5)},
		{Mul(Column("a"), IntConst(3)), types.Int(30)},
		{Div(Column("a"), IntConst(4)), types.Float(2.5)},
		{Add(Column("a"), FloatConst(0.5)), types.Float(10.5)},
	}
	for _, c := range cases {
		got := evalOK(t, c.e, env)
		if !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalComparisons(t *testing.T) {
	env := tupleEnv([]string{"a", "s"}, types.Int(10), types.String("uk"))
	cases := []struct {
		e    Expr
		want bool
	}{
		{Eq(Column("a"), IntConst(10)), true},
		{Ne(Column("a"), IntConst(10)), false},
		{Lt(Column("a"), IntConst(11)), true},
		{Le(Column("a"), IntConst(10)), true},
		{Gt(Column("a"), IntConst(10)), false},
		{Ge(Column("a"), IntConst(10)), true},
		{Eq(Column("s"), StringConst("uk")), true},
		{Eq(Column("s"), StringConst("us")), false},
		{Eq(Column("a"), FloatConst(10.0)), true},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalBooleanConnectives(t *testing.T) {
	env := tupleEnv([]string{"a"}, types.Int(1))
	tr := Eq(Column("a"), IntConst(1))
	fa := Eq(Column("a"), IntConst(2))
	cases := []struct {
		e    Expr
		want bool
	}{
		{AndOf(tr, tr), true},
		{AndOf(tr, fa), false},
		{OrOf(fa, tr), true},
		{OrOf(fa, fa), false},
		{Negation(fa), true},
		{Negation(tr), false},
	}
	for _, c := range cases {
		if got := evalOK(t, c.e, env); got.AsBool() != c.want {
			t.Errorf("%s = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestEvalThreeValuedLogic(t *testing.T) {
	env := tupleEnv([]string{"n", "a"}, types.Null(), types.Int(1))
	null := Column("n")
	tr := Eq(Column("a"), IntConst(1))
	fa := Eq(Column("a"), IntConst(2))

	// Comparisons with NULL are NULL.
	if v := evalOK(t, Eq(null, IntConst(1)), env); !v.IsNull() {
		t.Errorf("NULL = 1 → %v, want NULL", v)
	}
	// NULL AND false = false; NULL AND true = NULL.
	if v := evalOK(t, AndOf(Eq(null, IntConst(1)), fa), env); v.IsNull() || v.AsBool() {
		t.Errorf("NULL AND false = %v, want false", v)
	}
	if v := evalOK(t, AndOf(Eq(null, IntConst(1)), tr), env); !v.IsNull() {
		t.Errorf("NULL AND true = %v, want NULL", v)
	}
	// NULL OR true = true; NULL OR false = NULL.
	if v := evalOK(t, OrOf(Eq(null, IntConst(1)), tr), env); v.IsNull() || !v.AsBool() {
		t.Errorf("NULL OR true = %v, want true", v)
	}
	if v := evalOK(t, OrOf(Eq(null, IntConst(1)), fa), env); !v.IsNull() {
		t.Errorf("NULL OR false = %v, want NULL", v)
	}
	// NOT NULL = NULL; NULL arithmetic = NULL; IS NULL.
	if v := evalOK(t, Negation(Eq(null, IntConst(1))), env); !v.IsNull() {
		t.Errorf("NOT NULL = %v, want NULL", v)
	}
	if v := evalOK(t, Add(null, IntConst(1)), env); !v.IsNull() {
		t.Errorf("NULL + 1 = %v, want NULL", v)
	}
	if v := evalOK(t, &IsNull{E: null}, env); !v.AsBool() {
		t.Errorf("n IS NULL = %v, want true", v)
	}
	if v := evalOK(t, &IsNull{E: Column("a")}, env); v.AsBool() {
		t.Errorf("a IS NULL = %v, want false", v)
	}
}

func TestEvalIfThenElse(t *testing.T) {
	env := tupleEnv([]string{"a"}, types.Int(60))
	e := IfThenElse(Ge(Column("a"), IntConst(50)), IntConst(0), Column("a"))
	if v := evalOK(t, e, env); v.AsInt() != 0 {
		t.Errorf("if-then = %v, want 0", v)
	}
	env = tupleEnv([]string{"a"}, types.Int(40))
	if v := evalOK(t, e, env); v.AsInt() != 40 {
		t.Errorf("if-else = %v, want 40", v)
	}
	// A NULL guard selects the else branch (not-satisfied semantics).
	env = tupleEnv([]string{"a"}, types.Null())
	e = IfThenElse(Ge(Column("a"), IntConst(50)), IntConst(1), IntConst(2))
	if v := evalOK(t, e, env); v.AsInt() != 2 {
		t.Errorf("if with NULL guard = %v, want 2", v)
	}
}

func TestEvalVariables(t *testing.T) {
	env := VarEnv(map[string]types.Value{"x": types.Int(5)})
	if v := evalOK(t, Add(Variable("x"), IntConst(1)), env); v.AsInt() != 6 {
		t.Errorf("x+1 = %v", v)
	}
	if _, err := Eval(Variable("y"), env); err == nil {
		t.Error("unbound variable must error")
	}
}

func TestSatisfied(t *testing.T) {
	s := schema.New("t", schema.Col("a", types.KindInt))
	cond := Ge(Column("a"), IntConst(10))
	ok, err := Satisfied(cond, s, schema.Tuple{types.Int(12)})
	if err != nil || !ok {
		t.Errorf("12 >= 10: %v, %v", ok, err)
	}
	ok, err = Satisfied(cond, s, schema.Tuple{types.Int(5)})
	if err != nil || ok {
		t.Errorf("5 >= 10: %v, %v", ok, err)
	}
	// NULL condition is not satisfied.
	ok, err = Satisfied(cond, s, schema.Tuple{types.Null()})
	if err != nil || ok {
		t.Errorf("NULL >= 10: %v, %v", ok, err)
	}
}

func TestValidate(t *testing.T) {
	s := schema.New("t", schema.Col("a", types.KindInt))
	if err := Validate(Ge(Column("a"), IntConst(1)), s); err != nil {
		t.Errorf("valid condition rejected: %v", err)
	}
	if err := Validate(Ge(Column("b"), IntConst(1)), s); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{Add(Column("a"), IntConst(1)), "a + 1"},
		{Eq(Column("s"), StringConst("uk")), "s = 'uk'"},
		{AndOf(Gt(Column("a"), IntConst(1)), Lt(Column("a"), IntConst(5))), "(a > 1) AND (a < 5)"},
		{Negation(Eq(Column("a"), IntConst(1))), "NOT (a = 1)"},
		{IfThenElse(True, IntConst(1), IntConst(2)), "CASE WHEN true THEN 1 ELSE 2 END"},
		{&IsNull{E: Column("a")}, "a IS NULL"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqualStructural(t *testing.T) {
	a := AndOf(Ge(Column("x"), IntConst(1)), Lt(Column("y"), IntConst(2)))
	b := AndOf(Ge(Column("X"), IntConst(1)), Lt(Column("y"), IntConst(2)))
	if !Equal(a, b) {
		t.Error("case-insensitive column equality failed")
	}
	c := AndOf(Ge(Column("x"), IntConst(1)), Lt(Column("y"), IntConst(3)))
	if Equal(a, c) {
		t.Error("different constants compared equal")
	}
	if Equal(IntConst(1), FloatConst(1)) {
		t.Error("1 and 1.0 must differ structurally")
	}
	if !Equal(Variable("v"), Variable("v")) || Equal(Variable("v"), Variable("w")) {
		t.Error("variable equality wrong")
	}
}

func TestCmpOpHelpers(t *testing.T) {
	flips := map[CmpOp]CmpOp{
		CmpEq: CmpEq, CmpNe: CmpNe, CmpLt: CmpGt, CmpLe: CmpGe, CmpGt: CmpLt, CmpGe: CmpLe,
	}
	for op, want := range flips {
		if got := op.Flip(); got != want {
			t.Errorf("%s.Flip() = %s, want %s", op, got, want)
		}
	}
	negs := map[CmpOp]CmpOp{
		CmpEq: CmpNe, CmpNe: CmpEq, CmpLt: CmpGe, CmpLe: CmpGt, CmpGt: CmpLe, CmpGe: CmpLt,
	}
	for op, want := range negs {
		if got := op.Negate(); got != want {
			t.Errorf("%s.Negate() = %s, want %s", op, got, want)
		}
	}
}

func TestColsAndVars(t *testing.T) {
	e := AndOf(Ge(Column("A"), Variable("x")), Eq(Column("b"), Add(Variable("y"), Column("a"))))
	cols := Cols(e)
	if !cols["a"] || !cols["b"] || len(cols) != 2 {
		t.Errorf("Cols = %v", cols)
	}
	vars := Vars(e)
	if !vars["x"] || !vars["y"] || len(vars) != 2 {
		t.Errorf("Vars = %v", vars)
	}
}

func TestSize(t *testing.T) {
	if got := Size(IntConst(1)); got != 1 {
		t.Errorf("Size(1) = %d", got)
	}
	if got := Size(Add(Column("a"), IntConst(1))); got != 3 {
		t.Errorf("Size(a+1) = %d", got)
	}
}

func TestAndOfOrOfEmpty(t *testing.T) {
	if !IsTriviallyTrue(AndOf()) {
		t.Error("empty AndOf must be true")
	}
	if !IsTriviallyFalse(OrOf()) {
		t.Error("empty OrOf must be false")
	}
	x := Eq(Column("a"), IntConst(1))
	if AndOf(x) != Expr(x) || OrOf(x) != Expr(x) {
		t.Error("singleton AndOf/OrOf must return the operand")
	}
}
