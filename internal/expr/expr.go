// Package expr implements the expression language of the paper
// (Fig. 7): scalar expressions e over constants, attribute references
// and variables with arithmetic and conditional expressions, and
// conditions φ built from comparisons, boolean connectives, isnull and
// the boolean constants. The same AST serves three roles: concrete
// evaluation over tuples (statement semantics and reenactment),
// syntactic manipulation (data-slicing push-down, Fig. 9), and symbolic
// terms over VC-table variables (§8).
package expr

import (
	"strings"

	"github.com/mahif/mahif/internal/types"
)

// Expr is a node of the expression / condition AST.
type Expr interface {
	// String renders the expression in SQL-ish concrete syntax.
	String() string
	isExpr()
}

// CmpOp is a comparison operator.
type CmpOp uint8

// The comparison operators of Fig. 7.
const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
)

// String returns the SQL spelling of the comparison operator.
func (op CmpOp) String() string {
	switch op {
	case CmpEq:
		return "="
	case CmpNe:
		return "<>"
	case CmpLt:
		return "<"
	case CmpLe:
		return "<="
	case CmpGt:
		return ">"
	case CmpGe:
		return ">="
	}
	return "?"
}

// Flip mirrors the operator across the relation: a op b == b op.Flip() a.
func (op CmpOp) Flip() CmpOp {
	switch op {
	case CmpLt:
		return CmpGt
	case CmpLe:
		return CmpGe
	case CmpGt:
		return CmpLt
	case CmpGe:
		return CmpLe
	}
	return op
}

// Negate returns the complement operator: !(a op b) == a op.Negate() b.
func (op CmpOp) Negate() CmpOp {
	switch op {
	case CmpEq:
		return CmpNe
	case CmpNe:
		return CmpEq
	case CmpLt:
		return CmpGe
	case CmpLe:
		return CmpGt
	case CmpGt:
		return CmpLe
	case CmpGe:
		return CmpLt
	}
	return op
}

// Const is a literal value.
type Const struct{ V types.Value }

// Col is a reference to an attribute of the input relation by name.
type Col struct{ Name string }

// Var is a symbolic variable (used by the VC-table machinery, §8).
type Var struct{ Name string }

// Param is a named parameter slot ($name) of a scenario template. It
// renders as `$name`, flows through rewriting and simplification
// untouched, and must be substituted (SubstParams) before concrete
// evaluation. The symbolic compiler lowers it as a free variable, which
// keeps template-time slicing sound for every later binding.
type Param struct{ Name string }

// Arith is a binary arithmetic expression e ∘ e with ∘ ∈ {+,-,×,÷}.
type Arith struct {
	Op   types.Op
	L, R Expr
}

// Cmp is a comparison e ∘ e producing a boolean.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// And is binary conjunction.
type And struct{ L, R Expr }

// Or is binary disjunction.
type Or struct{ L, R Expr }

// Not is boolean negation.
type Not struct{ E Expr }

// IsNull tests whether its operand evaluates to NULL.
type IsNull struct{ E Expr }

// If is the conditional expression "if φ then e else e" of Fig. 7.
type If struct {
	Cond, Then, Else Expr
}

func (*Const) isExpr()  {}
func (*Col) isExpr()    {}
func (*Var) isExpr()    {}
func (*Param) isExpr()  {}
func (*Arith) isExpr()  {}
func (*Cmp) isExpr()    {}
func (*And) isExpr()    {}
func (*Or) isExpr()     {}
func (*Not) isExpr()    {}
func (*IsNull) isExpr() {}
func (*If) isExpr()     {}

// Constructors ---------------------------------------------------------------

// Constant wraps a value as an expression.
func Constant(v types.Value) *Const { return &Const{V: v} }

// IntConst builds an integer literal.
func IntConst(v int64) *Const { return &Const{V: types.Int(v)} }

// FloatConst builds a float literal.
func FloatConst(v float64) *Const { return &Const{V: types.Float(v)} }

// StringConst builds a string literal.
func StringConst(v string) *Const { return &Const{V: types.String(v)} }

// BoolConst builds a boolean literal.
func BoolConst(v bool) *Const { return &Const{V: types.Bool(v)} }

// True and False are the boolean constant expressions.
var (
	True  = BoolConst(true)
	False = BoolConst(false)
)

// Column builds an attribute reference.
func Column(name string) *Col { return &Col{Name: name} }

// Variable builds a symbolic variable reference.
func Variable(name string) *Var { return &Var{Name: name} }

// Parameter builds a template parameter slot $name.
func Parameter(name string) *Param { return &Param{Name: name} }

// Add, Sub, Mul, Div build arithmetic nodes.
func Add(l, r Expr) *Arith { return &Arith{Op: types.OpAdd, L: l, R: r} }
func Sub(l, r Expr) *Arith { return &Arith{Op: types.OpSub, L: l, R: r} }
func Mul(l, r Expr) *Arith { return &Arith{Op: types.OpMul, L: l, R: r} }
func Div(l, r Expr) *Arith { return &Arith{Op: types.OpDiv, L: l, R: r} }

// Eq, Ne, Lt, Le, Gt, Ge build comparison nodes.
func Eq(l, r Expr) *Cmp { return &Cmp{Op: CmpEq, L: l, R: r} }
func Ne(l, r Expr) *Cmp { return &Cmp{Op: CmpNe, L: l, R: r} }
func Lt(l, r Expr) *Cmp { return &Cmp{Op: CmpLt, L: l, R: r} }
func Le(l, r Expr) *Cmp { return &Cmp{Op: CmpLe, L: l, R: r} }
func Gt(l, r Expr) *Cmp { return &Cmp{Op: CmpGt, L: l, R: r} }
func Ge(l, r Expr) *Cmp { return &Cmp{Op: CmpGe, L: l, R: r} }

// AndOf folds a conjunction over zero or more conditions
// (empty ⇒ true).
func AndOf(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &And{L: out, R: e}
		}
	}
	if out == nil {
		return True
	}
	return out
}

// OrOf folds a disjunction over zero or more conditions
// (empty ⇒ false).
func OrOf(es ...Expr) Expr {
	var out Expr
	for _, e := range es {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &Or{L: out, R: e}
		}
	}
	if out == nil {
		return False
	}
	return out
}

// Negation builds ¬e.
func Negation(e Expr) *Not { return &Not{E: e} }

// IfThenElse builds a conditional expression.
func IfThenElse(cond, then, els Expr) *If { return &If{Cond: cond, Then: then, Else: els} }

// Rendering ------------------------------------------------------------------

func (e *Const) String() string { return e.V.String() }
func (e *Col) String() string   { return e.Name }
func (e *Var) String() string   { return e.Name }
func (e *Param) String() string { return "$" + e.Name }

func parenIf(e Expr) string {
	switch e.(type) {
	case *Const, *Col, *Var, *Param, *IsNull:
		return e.String()
	}
	return "(" + e.String() + ")"
}

func (e *Arith) String() string {
	return parenIf(e.L) + " " + e.Op.String() + " " + parenIf(e.R)
}

func (e *Cmp) String() string {
	return parenIf(e.L) + " " + e.Op.String() + " " + parenIf(e.R)
}

func (e *And) String() string { return parenIf(e.L) + " AND " + parenIf(e.R) }
func (e *Or) String() string  { return parenIf(e.L) + " OR " + parenIf(e.R) }
func (e *Not) String() string { return "NOT " + parenIf(e.E) }

func (e *IsNull) String() string { return parenIf(e.E) + " IS NULL" }

func (e *If) String() string {
	var b strings.Builder
	b.WriteString("CASE WHEN ")
	b.WriteString(e.Cond.String())
	b.WriteString(" THEN ")
	b.WriteString(e.Then.String())
	b.WriteString(" ELSE ")
	b.WriteString(e.Else.String())
	b.WriteString(" END")
	return b.String()
}

// Equal reports structural equality of two expressions.
func Equal(a, b Expr) bool {
	switch x := a.(type) {
	case *Const:
		y, ok := b.(*Const)
		return ok && x.V.Equal(y.V) && x.V.Kind() == y.V.Kind()
	case *Col:
		y, ok := b.(*Col)
		return ok && strings.EqualFold(x.Name, y.Name)
	case *Var:
		y, ok := b.(*Var)
		return ok && x.Name == y.Name
	case *Param:
		y, ok := b.(*Param)
		return ok && x.Name == y.Name
	case *Arith:
		y, ok := b.(*Arith)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Cmp:
		y, ok := b.(*Cmp)
		return ok && x.Op == y.Op && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *And:
		y, ok := b.(*And)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Or:
		y, ok := b.(*Or)
		return ok && Equal(x.L, y.L) && Equal(x.R, y.R)
	case *Not:
		y, ok := b.(*Not)
		return ok && Equal(x.E, y.E)
	case *IsNull:
		y, ok := b.(*IsNull)
		return ok && Equal(x.E, y.E)
	case *If:
		y, ok := b.(*If)
		return ok && Equal(x.Cond, y.Cond) && Equal(x.Then, y.Then) && Equal(x.Else, y.Else)
	}
	return false
}

// Size returns the number of AST nodes, a proxy for condition cost used
// by the data-slicing cost discussion in §6.
func Size(e Expr) int {
	n := 0
	Walk(e, func(Expr) { n++ })
	return n
}

// Walk visits every node of the expression tree in prefix order.
func Walk(e Expr, visit func(Expr)) {
	if e == nil {
		return
	}
	visit(e)
	switch x := e.(type) {
	case *Arith:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Cmp:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *And:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Or:
		Walk(x.L, visit)
		Walk(x.R, visit)
	case *Not:
		Walk(x.E, visit)
	case *IsNull:
		Walk(x.E, visit)
	case *If:
		Walk(x.Cond, visit)
		Walk(x.Then, visit)
		Walk(x.Else, visit)
	}
}

// Cols returns the set of attribute names referenced by e.
func Cols(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(n Expr) {
		if c, ok := n.(*Col); ok {
			out[strings.ToLower(c.Name)] = true
		}
	})
	return out
}

// Vars returns the set of symbolic variable names referenced by e.
func Vars(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(n Expr) {
		if v, ok := n.(*Var); ok {
			out[v.Name] = true
		}
	})
	return out
}

// Params returns the set of template parameter names referenced by e.
func Params(e Expr) map[string]bool {
	out := map[string]bool{}
	Walk(e, func(n Expr) {
		if p, ok := n.(*Param); ok {
			out[p.Name] = true
		}
	})
	return out
}
