package expr

import (
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

func TestSubstCols(t *testing.T) {
	// (fee >= 10)[fee ← if price >= 50 then 0 else fee]
	cond := Ge(Column("fee"), IntConst(10))
	repl := map[string]Expr{
		"fee": IfThenElse(Ge(Column("price"), IntConst(50)), IntConst(0), Column("fee")),
	}
	got := SubstCols(cond, repl)
	want := Ge(IfThenElse(Ge(Column("price"), IntConst(50)), IntConst(0), Column("fee")), IntConst(10))
	if !Equal(got, want) {
		t.Errorf("SubstCols = %s, want %s", got, want)
	}
	// Original untouched.
	if !Equal(cond, Ge(Column("fee"), IntConst(10))) {
		t.Error("SubstCols mutated its input")
	}
}

func TestSubstColsCaseInsensitive(t *testing.T) {
	got := SubstCols(Column("FEE"), map[string]Expr{"fee": IntConst(1)})
	if !Equal(got, IntConst(1)) {
		t.Errorf("case-insensitive substitution failed: %s", got)
	}
}

func TestSubstColsNoMapping(t *testing.T) {
	e := Add(Column("a"), Column("b"))
	got := SubstCols(e, map[string]Expr{"c": IntConst(1)})
	if got != Expr(e) {
		t.Error("substitution without hits must return the input unchanged")
	}
}

func TestSubstVars(t *testing.T) {
	e := Add(Variable("x"), Variable("y"))
	got := SubstVars(e, map[string]Expr{"x": IntConst(3)})
	if !Equal(got, Add(IntConst(3), Variable("y"))) {
		t.Errorf("SubstVars = %s", got)
	}
}

func TestRenameCols(t *testing.T) {
	e := AndOf(Ge(Column("a"), IntConst(1)), Eq(Column("b"), Column("a")))
	got := RenameCols(e, map[string]string{"a": "x"})
	want := AndOf(Ge(Column("x"), IntConst(1)), Eq(Column("b"), Column("x")))
	if !Equal(got, want) {
		t.Errorf("RenameCols = %s, want %s", got, want)
	}
}

func TestColsToVars(t *testing.T) {
	e := Ge(Column("Fee"), Add(Column("price"), IntConst(1)))
	got := ColsToVars(e, func(col string) string { return "x_" + col })
	want := Ge(Variable("x_fee"), Add(Variable("x_price"), IntConst(1)))
	if !Equal(got, want) {
		t.Errorf("ColsToVars = %s, want %s", got, want)
	}
}

// TestSubstitutionLemma checks the semantic substitution property the
// push-down rules rely on: eval(e[A←r], t) == eval(e, t[A ↦ eval(r,t)]).
func TestSubstitutionLemma(t *testing.T) {
	s := schema.New("t", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt))
	e := AndOf(Ge(Column("a"), IntConst(5)), Lt(Add(Column("a"), Column("b")), IntConst(20)))
	r := Mul(Column("b"), IntConst(2))

	for av := int64(0); av < 10; av++ {
		for bv := int64(0); bv < 10; bv++ {
			tup := schema.Tuple{types.Int(av), types.Int(bv)}
			rv, err := Eval(r, TupleEnv(s, tup))
			if err != nil {
				t.Fatal(err)
			}
			lhs, err := Eval(SubstCols(e, map[string]Expr{"a": r}), TupleEnv(s, tup))
			if err != nil {
				t.Fatal(err)
			}
			rhs, err := Eval(e, TupleEnv(s, schema.Tuple{rv, types.Int(bv)}))
			if err != nil {
				t.Fatal(err)
			}
			if !lhs.Equal(rhs) {
				t.Fatalf("substitution lemma violated at a=%d b=%d: %v vs %v", av, bv, lhs, rhs)
			}
		}
	}
}
