package expr

import "github.com/mahif/mahif/internal/types"

// Simplify rewrites e into an equivalent, usually smaller expression:
// constant subexpressions are folded, boolean identities applied
// (true∧φ ⇒ φ, false∨φ ⇒ φ, ¬¬φ ⇒ φ, …), conditionals with constant
// or identical branches collapsed, and double negations of comparisons
// folded into the complemented operator. Simplification preserves SQL
// three-valued semantics: rules that would be unsound under NULL
// (e.g. φ∧¬φ ⇒ false) are deliberately not applied.
func Simplify(e Expr) Expr {
	switch x := e.(type) {
	case *Const, *Col, *Var:
		return e
	case *Arith:
		l, r := Simplify(x.L), Simplify(x.R)
		if lc, ok := l.(*Const); ok {
			if rc, ok := r.(*Const); ok {
				if v, err := types.Arith(x.Op, lc.V, rc.V); err == nil {
					return Constant(v)
				}
			}
		}
		// Additive / multiplicative identities over numeric constants.
		if rc, ok := r.(*Const); ok && rc.V.IsNumeric() {
			f := rc.V.AsFloat()
			switch {
			case f == 0 && (x.Op == types.OpAdd || x.Op == types.OpSub):
				return l
			case f == 1 && x.Op == types.OpMul:
				return l
			}
		}
		if lc, ok := l.(*Const); ok && lc.V.IsNumeric() {
			f := lc.V.AsFloat()
			switch {
			case f == 0 && x.Op == types.OpAdd:
				return r
			case f == 1 && x.Op == types.OpMul:
				return r
			}
		}
		return &Arith{Op: x.Op, L: l, R: r}
	case *Cmp:
		l, r := Simplify(x.L), Simplify(x.R)
		if lc, ok := l.(*Const); ok {
			if rc, ok := r.(*Const); ok {
				if v, err := EvalCmp(x.Op, lc.V, rc.V); err == nil && !v.IsNull() {
					return Constant(v)
				}
			}
		}
		return &Cmp{Op: x.Op, L: l, R: r}
	case *And:
		l, r := Simplify(x.L), Simplify(x.R)
		if isConstBool(l, false) || isConstBool(r, false) {
			return False
		}
		if isConstBool(l, true) {
			return r
		}
		if isConstBool(r, true) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return &And{L: l, R: r}
	case *Or:
		l, r := Simplify(x.L), Simplify(x.R)
		if isConstBool(l, true) || isConstBool(r, true) {
			return True
		}
		if isConstBool(l, false) {
			return r
		}
		if isConstBool(r, false) {
			return l
		}
		if Equal(l, r) {
			return l
		}
		return &Or{L: l, R: r}
	case *Not:
		inner := Simplify(x.E)
		switch y := inner.(type) {
		case *Const:
			if y.V.Kind() == types.KindBool {
				return BoolConst(!y.V.AsBool())
			}
		case *Not:
			return y.E
		case *Cmp:
			// ¬(a op b) ⇒ a ¬op b — sound in 3VL because both sides are
			// NULL exactly when an operand is NULL.
			return &Cmp{Op: y.Op.Negate(), L: y.L, R: y.R}
		}
		return &Not{E: inner}
	case *IsNull:
		inner := Simplify(x.E)
		if c, ok := inner.(*Const); ok {
			return BoolConst(c.V.IsNull())
		}
		return &IsNull{E: inner}
	case *If:
		c, t, el := Simplify(x.Cond), Simplify(x.Then), Simplify(x.Else)
		if cc, ok := c.(*Const); ok {
			// A NULL or false guard selects the else branch, matching Eval.
			if cc.V.IsTrue() {
				return t
			}
			return el
		}
		if Equal(t, el) {
			return t
		}
		return &If{Cond: c, Then: t, Else: el}
	}
	return e
}

func isConstBool(e Expr, want bool) bool {
	c, ok := e.(*Const)
	return ok && c.V.Kind() == types.KindBool && c.V.AsBool() == want
}

// IsTriviallyTrue reports whether e simplifies to the constant true.
func IsTriviallyTrue(e Expr) bool { return isConstBool(Simplify(e), true) }

// IsTriviallyFalse reports whether e simplifies to the constant false.
func IsTriviallyFalse(e Expr) bool { return isConstBool(Simplify(e), false) }

// Conjuncts flattens nested conjunctions into a slice.
func Conjuncts(e Expr) []Expr {
	if a, ok := e.(*And); ok {
		return append(Conjuncts(a.L), Conjuncts(a.R)...)
	}
	return []Expr{e}
}

// Disjuncts flattens nested disjunctions into a slice.
func Disjuncts(e Expr) []Expr {
	if o, ok := e.(*Or); ok {
		return append(Disjuncts(o.L), Disjuncts(o.R)...)
	}
	return []Expr{e}
}
