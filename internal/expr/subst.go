package expr

import (
	"strings"

	"github.com/mahif/mahif/internal/types"
)

// SubstCols returns e with every attribute reference A replaced by
// repl[A] (case-insensitive). Attributes without a mapping are kept.
// This is the substitution e[A⃗ ← e⃗] used when pushing data-slicing
// conditions through updates (§6) and when binding statement
// expressions to a symbolic tuple (§8.2).
func SubstCols(e Expr, repl map[string]Expr) Expr {
	if len(repl) == 0 {
		return e
	}
	return rewrite(e, func(n Expr) (Expr, bool) {
		c, ok := n.(*Col)
		if !ok {
			return nil, false
		}
		r, ok := repl[strings.ToLower(c.Name)]
		return r, ok
	})
}

// SubstVars returns e with every symbolic variable x replaced by
// repl[x]. Variables without a mapping are kept.
func SubstVars(e Expr, repl map[string]Expr) Expr {
	if len(repl) == 0 {
		return e
	}
	return rewrite(e, func(n Expr) (Expr, bool) {
		v, ok := n.(*Var)
		if !ok {
			return nil, false
		}
		r, ok := repl[v.Name]
		return r, ok
	})
}

// SubstParams returns e with every template parameter $p replaced by
// the constant repl[p]. Parameters without a binding are kept — callers
// that require a closed expression should check Params first.
func SubstParams(e Expr, repl map[string]types.Value) Expr {
	if len(repl) == 0 {
		return e
	}
	return rewrite(e, func(n Expr) (Expr, bool) {
		p, ok := n.(*Param)
		if !ok {
			return nil, false
		}
		v, ok := repl[p.Name]
		if !ok {
			return nil, false
		}
		return Constant(v), true
	})
}

// RenameCols returns e with attribute names mapped through ren
// (case-insensitive); used for θ[Sch(Q1) ← Sch(Q2)] when pushing
// conditions through unions.
func RenameCols(e Expr, ren map[string]string) Expr {
	if len(ren) == 0 {
		return e
	}
	return rewrite(e, func(n Expr) (Expr, bool) {
		c, ok := n.(*Col)
		if !ok {
			return nil, false
		}
		to, ok := ren[strings.ToLower(c.Name)]
		if !ok {
			return nil, false
		}
		return Column(to), true
	})
}

// ColsToVars replaces every attribute reference A with the symbolic
// variable named by name(A). It converts a statement condition into a
// symbolic condition over the current VC-table tuple.
func ColsToVars(e Expr, name func(col string) string) Expr {
	return rewrite(e, func(n Expr) (Expr, bool) {
		c, ok := n.(*Col)
		if !ok {
			return nil, false
		}
		return Variable(name(strings.ToLower(c.Name))), true
	})
}

// rewrite applies f bottom-up-ish: if f replaces a node the replacement
// is taken as-is (not re-visited); otherwise children are rewritten.
func rewrite(e Expr, f func(Expr) (Expr, bool)) Expr {
	if e == nil {
		return nil
	}
	if r, ok := f(e); ok {
		return r
	}
	switch x := e.(type) {
	case *Const, *Col, *Var, *Param:
		return e
	case *Arith:
		l, r := rewrite(x.L, f), rewrite(x.R, f)
		if l == x.L && r == x.R {
			return e
		}
		return &Arith{Op: x.Op, L: l, R: r}
	case *Cmp:
		l, r := rewrite(x.L, f), rewrite(x.R, f)
		if l == x.L && r == x.R {
			return e
		}
		return &Cmp{Op: x.Op, L: l, R: r}
	case *And:
		l, r := rewrite(x.L, f), rewrite(x.R, f)
		if l == x.L && r == x.R {
			return e
		}
		return &And{L: l, R: r}
	case *Or:
		l, r := rewrite(x.L, f), rewrite(x.R, f)
		if l == x.L && r == x.R {
			return e
		}
		return &Or{L: l, R: r}
	case *Not:
		n := rewrite(x.E, f)
		if n == x.E {
			return e
		}
		return &Not{E: n}
	case *IsNull:
		n := rewrite(x.E, f)
		if n == x.E {
			return e
		}
		return &IsNull{E: n}
	case *If:
		c, t, el := rewrite(x.Cond, f), rewrite(x.Then, f), rewrite(x.Else, f)
		if c == x.Cond && t == x.Then && el == x.Else {
			return e
		}
		return &If{Cond: c, Then: t, Else: el}
	}
	return e
}
