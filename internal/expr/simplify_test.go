package expr

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

func TestSimplifyConstantFolding(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{Add(IntConst(2), IntConst(3)), IntConst(5)},
		{Mul(IntConst(4), IntConst(2)), IntConst(8)},
		{Ge(IntConst(5), IntConst(3)), True},
		{Lt(IntConst(5), IntConst(3)), False},
		{Eq(StringConst("a"), StringConst("a")), True},
		{Add(Column("x"), IntConst(0)), Column("x")},
		{Mul(Column("x"), IntConst(1)), Column("x")},
		{Sub(Column("x"), IntConst(0)), Column("x")},
	}
	for _, c := range cases {
		if got := Simplify(c.in); !Equal(got, c.want) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyBooleanIdentities(t *testing.T) {
	x := Ge(Column("a"), IntConst(1))
	cases := []struct {
		in   Expr
		want Expr
	}{
		{AndOf(True, x), x},
		{AndOf(x, True), x},
		{AndOf(False, x), False},
		{OrOf(False, x), x},
		{OrOf(True, x), True},
		{AndOf(x, x), x},
		{OrOf(x, x), x},
		{Negation(Negation(x)), x},
		{Negation(True), False},
		{Negation(Ge(Column("a"), IntConst(1))), Lt(Column("a"), IntConst(1))},
	}
	for _, c := range cases {
		if got := Simplify(c.in); !Equal(got, c.want) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyIf(t *testing.T) {
	cases := []struct {
		in   Expr
		want Expr
	}{
		{IfThenElse(True, Column("a"), Column("b")), Column("a")},
		{IfThenElse(False, Column("a"), Column("b")), Column("b")},
		{IfThenElse(Ge(Column("x"), IntConst(1)), Column("a"), Column("a")), Column("a")},
	}
	for _, c := range cases {
		if got := Simplify(c.in); !Equal(got, c.want) {
			t.Errorf("Simplify(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestSimplifyIsNull(t *testing.T) {
	if got := Simplify(&IsNull{E: Constant(types.Null())}); !Equal(got, True) {
		t.Errorf("NULL IS NULL simplified to %s", got)
	}
	if got := Simplify(&IsNull{E: IntConst(1)}); !Equal(got, False) {
		t.Errorf("1 IS NULL simplified to %s", got)
	}
}

func TestConjunctsDisjuncts(t *testing.T) {
	a, b, c := Column("a"), Column("b"), Column("c")
	conj := Conjuncts(AndOf(a, b, c))
	if len(conj) != 3 {
		t.Errorf("Conjuncts = %v", conj)
	}
	disj := Disjuncts(OrOf(a, b, c))
	if len(disj) != 3 {
		t.Errorf("Disjuncts = %v", disj)
	}
	if len(Conjuncts(a)) != 1 {
		t.Error("single expr must be its own conjunct")
	}
}

// randomExpr builds a random condition over integer columns a, b.
func randomExpr(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		switch r.Intn(3) {
		case 0:
			return IntConst(int64(r.Intn(20) - 10))
		case 1:
			return Column("a")
		default:
			return Column("b")
		}
	}
	switch r.Intn(6) {
	case 0:
		return Add(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 1:
		return Sub(randomExpr(r, depth-1), randomExpr(r, depth-1))
	case 2:
		return Mul(randomExpr(r, depth-1), IntConst(int64(r.Intn(5))))
	default:
		return IfThenElse(randomCond(r, depth-1), randomExpr(r, depth-1), randomExpr(r, depth-1))
	}
}

func randomCond(r *rand.Rand, depth int) Expr {
	if depth == 0 {
		ops := []CmpOp{CmpEq, CmpNe, CmpLt, CmpLe, CmpGt, CmpGe}
		return &Cmp{Op: ops[r.Intn(len(ops))], L: randomExpr(r, 0), R: randomExpr(r, 0)}
	}
	switch r.Intn(4) {
	case 0:
		return &And{L: randomCond(r, depth-1), R: randomCond(r, depth-1)}
	case 1:
		return &Or{L: randomCond(r, depth-1), R: randomCond(r, depth-1)}
	case 2:
		return &Not{E: randomCond(r, depth-1)}
	default:
		return randomCond(r, 0)
	}
}

// TestSimplifyPreservesSemantics is the core property test: over random
// expressions and random non-NULL tuples, Simplify must never change
// the evaluation result.
func TestSimplifyPreservesSemantics(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	s := schema.New("t", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt))
	for i := 0; i < 2000; i++ {
		var e Expr
		if i%2 == 0 {
			e = randomExpr(r, 3)
		} else {
			e = randomCond(r, 3)
		}
		simp := Simplify(e)
		tup := schema.Tuple{types.Int(int64(r.Intn(20) - 10)), types.Int(int64(r.Intn(20) - 10))}
		env := TupleEnv(s, tup)
		v1, err1 := Eval(e, env)
		v2, err2 := Eval(simp, env)
		if (err1 == nil) != (err2 == nil) {
			// Simplification may remove an erroring subexpression (e.g.
			// division by zero in a dead branch); it must never add one.
			if err2 != nil {
				t.Fatalf("Simplify(%s) = %s introduced error: %v", e, simp, err2)
			}
			continue
		}
		if err1 != nil {
			continue
		}
		if !v1.Equal(v2) {
			t.Fatalf("Simplify changed semantics:\n  %s = %v\n  %s = %v\n  tuple %v",
				e, v1, simp, v2, tup)
		}
	}
}

// TestSimplifyIdempotent: simplifying twice equals simplifying once.
func TestSimplifyIdempotent(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		e := randomCond(r, 3)
		once := Simplify(e)
		twice := Simplify(once)
		if !Equal(once, twice) {
			t.Fatalf("not idempotent:\n  once  %s\n  twice %s", once, twice)
		}
	}
}
