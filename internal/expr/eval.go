package expr

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// Env supplies bindings for attribute references and symbolic variables
// during evaluation. Either part may be absent.
type Env struct {
	Schema *schema.Schema
	Tuple  schema.Tuple
	// Vars binds symbolic variable names to concrete values; it is how
	// an assignment λ (Def. 5) is applied to a symbolic expression.
	Vars map[string]types.Value
}

// TupleEnv builds an environment binding attribute references against
// one tuple of the given schema.
func TupleEnv(s *schema.Schema, t schema.Tuple) *Env {
	return &Env{Schema: s, Tuple: t}
}

// VarEnv builds an environment binding only symbolic variables.
func VarEnv(vars map[string]types.Value) *Env { return &Env{Vars: vars} }

func (env *Env) col(name string) (types.Value, error) {
	if env.Schema == nil {
		return types.Null(), fmt.Errorf("expr: unbound attribute %q (no tuple in scope)", name)
	}
	idx := env.Schema.ColIndex(name)
	if idx < 0 {
		return types.Null(), fmt.Errorf("expr: attribute %q not in schema %s", name, env.Schema)
	}
	if idx >= len(env.Tuple) {
		return types.Null(), fmt.Errorf("expr: tuple arity %d below attribute index %d", len(env.Tuple), idx)
	}
	return env.Tuple[idx], nil
}

// Eval evaluates e under env using SQL three-valued logic: comparisons
// and boolean connectives involving NULL follow the SQL truth tables
// and arithmetic over NULL yields NULL.
func Eval(e Expr, env *Env) (types.Value, error) {
	switch x := e.(type) {
	case *Const:
		return x.V, nil
	case *Col:
		return env.col(x.Name)
	case *Var:
		if env.Vars != nil {
			if v, ok := env.Vars[x.Name]; ok {
				return v, nil
			}
		}
		return types.Null(), fmt.Errorf("expr: unbound variable %q", x.Name)
	case *Arith:
		l, err := Eval(x.L, env)
		if err != nil {
			return types.Null(), err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return types.Null(), err
		}
		return types.Arith(x.Op, l, r)
	case *Cmp:
		l, err := Eval(x.L, env)
		if err != nil {
			return types.Null(), err
		}
		r, err := Eval(x.R, env)
		if err != nil {
			return types.Null(), err
		}
		return EvalCmp(x.Op, l, r)
	case *And:
		return evalAndOr(x.L, x.R, env, true)
	case *Or:
		return evalAndOr(x.L, x.R, env, false)
	case *Not:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null(), err
		}
		if v.IsNull() {
			return types.Null(), nil
		}
		if v.Kind() != types.KindBool {
			return types.Null(), fmt.Errorf("expr: NOT applied to %s", v.Kind())
		}
		return types.Bool(!v.AsBool()), nil
	case *IsNull:
		v, err := Eval(x.E, env)
		if err != nil {
			return types.Null(), err
		}
		return types.Bool(v.IsNull()), nil
	case *If:
		c, err := Eval(x.Cond, env)
		if err != nil {
			return types.Null(), err
		}
		if c.IsTrue() {
			return Eval(x.Then, env)
		}
		return Eval(x.Else, env)
	}
	return types.Null(), fmt.Errorf("expr: cannot evaluate %T", e)
}

// EvalCmp applies a comparison operator to two values under SQL
// three-valued semantics (NULL operands yield NULL). It is exported so
// the compiled executor (internal/exec) shares the interpreter's
// comparison semantics exactly.
func EvalCmp(op CmpOp, l, r types.Value) (types.Value, error) {
	if l.IsNull() || r.IsNull() {
		return types.Null(), nil
	}
	switch op {
	case CmpEq:
		if bothComparable(l, r) {
			c, err := l.Compare(r)
			if err != nil {
				return types.Null(), err
			}
			return types.Bool(c == 0), nil
		}
		return types.Bool(l.Equal(r)), nil
	case CmpNe:
		v, err := EvalCmp(CmpEq, l, r)
		if err != nil || v.IsNull() {
			return v, err
		}
		return types.Bool(!v.AsBool()), nil
	}
	c, err := l.Compare(r)
	if err != nil {
		return types.Null(), err
	}
	switch op {
	case CmpLt:
		return types.Bool(c < 0), nil
	case CmpLe:
		return types.Bool(c <= 0), nil
	case CmpGt:
		return types.Bool(c > 0), nil
	case CmpGe:
		return types.Bool(c >= 0), nil
	}
	return types.Null(), fmt.Errorf("expr: unknown comparison")
}

func bothComparable(l, r types.Value) bool {
	if l.IsNumeric() && r.IsNumeric() {
		return true
	}
	return l.Kind() == r.Kind()
}

// evalAndOr implements SQL three-valued AND (isAnd) / OR semantics.
func evalAndOr(le, re Expr, env *Env, isAnd bool) (types.Value, error) {
	l, err := Eval(le, env)
	if err != nil {
		return types.Null(), err
	}
	// Short circuit on the dominating value.
	if !l.IsNull() {
		if l.Kind() != types.KindBool {
			return types.Null(), fmt.Errorf("expr: boolean connective applied to %s", l.Kind())
		}
		if isAnd && !l.AsBool() {
			return types.False, nil
		}
		if !isAnd && l.AsBool() {
			return types.True, nil
		}
	}
	r, err := Eval(re, env)
	if err != nil {
		return types.Null(), err
	}
	if !r.IsNull() && r.Kind() != types.KindBool {
		return types.Null(), fmt.Errorf("expr: boolean connective applied to %s", r.Kind())
	}
	switch {
	case l.IsNull() && r.IsNull():
		return types.Null(), nil
	case l.IsNull():
		if isAnd {
			if !r.AsBool() {
				return types.False, nil
			}
			return types.Null(), nil
		}
		if r.AsBool() {
			return types.True, nil
		}
		return types.Null(), nil
	case r.IsNull():
		if isAnd {
			// l must be true here (false short-circuited above).
			return types.Null(), nil
		}
		return types.Null(), nil
	}
	if isAnd {
		return types.Bool(l.AsBool() && r.AsBool()), nil
	}
	return types.Bool(l.AsBool() || r.AsBool()), nil
}

// Satisfied evaluates a condition over a tuple and reports whether it
// holds; NULL results count as not satisfied (SQL WHERE semantics).
func Satisfied(cond Expr, s *schema.Schema, t schema.Tuple) (bool, error) {
	v, err := Eval(cond, TupleEnv(s, t))
	if err != nil {
		return false, err
	}
	return v.IsTrue(), nil
}

// Validate checks that every attribute reference in e resolves in s,
// returning a descriptive error otherwise. It is used to reject
// malformed statements before execution.
func Validate(e Expr, s *schema.Schema) error {
	var bad []string
	Walk(e, func(n Expr) {
		if c, ok := n.(*Col); ok {
			if s.ColIndex(c.Name) < 0 {
				bad = append(bad, c.Name)
			}
		}
	})
	if len(bad) > 0 {
		return fmt.Errorf("expr: unknown attribute(s) %s in schema %s", strings.Join(bad, ", "), s)
	}
	return nil
}
