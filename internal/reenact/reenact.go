// Package reenact compiles transactional histories into relational
// algebra queries (Def. 3): R_{U_{Set,θ}} is a generalized projection
// with per-attribute conditionals, R_{D_θ} a selection on ¬θ, and
// inserts become unions. For histories over multiple relations one
// query per relation is produced, and INSERT…SELECT statements are
// wired against the reenacted state of their input relations.
//
// It also implements the §10 optimization that splits a reenactment
// query into a part over the base relation (no inserts) and a part that
// only processes inserted tuples, enabling program slicing on the
// former.
package reenact

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/storage"
)

// Filters maps relation name (lowercase) to a data-slicing condition
// applied at the base scan; absent entries mean no filter.
type Filters map[string]expr.Expr

// baseQuery returns the (possibly filtered) scan for rel.
func baseQuery(rel string, filters Filters) algebra.Query {
	var q algebra.Query = &algebra.Scan{Rel: rel}
	if filters != nil {
		if f, ok := filters[strings.ToLower(rel)]; ok && !expr.IsTriviallyTrue(f) {
			q = &algebra.Select{Cond: f, In: q}
		}
	}
	return q
}

// stepQuery folds one statement onto the running reenactment query for
// its relation. cur maps relation → query reflecting the state after
// the preceding statements.
func stepQuery(st history.Statement, cur map[string]algebra.Query, db *storage.Database) (algebra.Query, error) {
	rel := strings.ToLower(st.Table())
	in := cur[rel]
	switch x := st.(type) {
	case *history.Update:
		r, err := db.Relation(rel)
		if err != nil {
			return nil, err
		}
		vec, err := x.SetVector(r.Schema)
		if err != nil {
			return nil, err
		}
		exprs := make([]algebra.NamedExpr, len(vec))
		for i, c := range r.Schema.Columns {
			if col, ok := vec[i].(*expr.Col); ok && strings.EqualFold(col.Name, c.Name) {
				// Identity column: no conditional needed.
				exprs[i] = algebra.NamedExpr{Name: c.Name, E: expr.Column(c.Name)}
				continue
			}
			exprs[i] = algebra.NamedExpr{
				Name: c.Name,
				E:    expr.IfThenElse(x.Where, vec[i], expr.Column(c.Name)),
			}
		}
		return &algebra.Project{Exprs: exprs, In: in}, nil
	case *history.Delete:
		return &algebra.Select{Cond: expr.Negation(x.Where), In: in}, nil
	case *history.InsertValues:
		if len(x.Rows) == 0 {
			return in, nil
		}
		r, err := db.Relation(rel)
		if err != nil {
			return nil, err
		}
		return &algebra.Union{L: in, R: &algebra.Singleton{Sch: r.Schema, Tuples: x.Rows}}, nil
	case *history.InsertQuery:
		q := algebra.SubstituteScans(x.Query, cur)
		return &algebra.Union{L: in, R: q}, nil
	}
	return nil, fmt.Errorf("reenact: unknown statement %T", st)
}

// Queries builds the reenactment query R_H^R for every relation
// modified by h. filters (may be nil) injects data-slicing conditions
// at the base scans.
func Queries(h history.History, db *storage.Database, filters Filters) (map[string]algebra.Query, error) {
	cur := map[string]algebra.Query{}
	// Seed every relation that any statement touches or reads.
	seed := func(rel string) {
		rel = strings.ToLower(rel)
		if _, ok := cur[rel]; !ok {
			cur[rel] = baseQuery(rel, filters)
		}
	}
	for _, st := range h {
		seed(st.Table())
		if iq, ok := st.(*history.InsertQuery); ok {
			for rel := range algebra.BaseRelations(iq.Query) {
				seed(rel)
			}
		}
	}
	for _, st := range h {
		q, err := stepQuery(st, cur, db)
		if err != nil {
			return nil, fmt.Errorf("reenact: %s: %w", st, err)
		}
		cur[strings.ToLower(st.Table())] = q
	}
	// Only relations actually modified need to be returned.
	out := map[string]algebra.Query{}
	for rel := range h.Relations() {
		out[rel] = cur[rel]
	}
	return out, nil
}

// QueryForRelation builds the reenactment query for a single relation.
func QueryForRelation(h history.History, rel string, db *storage.Database, filters Filters) (algebra.Query, error) {
	qs, err := Queries(h, db, filters)
	if err != nil {
		return nil, err
	}
	q, ok := qs[strings.ToLower(rel)]
	if !ok {
		return baseQuery(rel, filters), nil
	}
	return q, nil
}

// StripInsertsOn removes insert statements targeting rel from h,
// returning the reduced history and the original positions kept. This
// is the H_noIns of §10; updates/deletes and statements on other
// relations are retained.
func StripInsertsOn(h history.History, rel string) (history.History, []int) {
	var out history.History
	var kept []int
	for i, st := range h {
		switch st.(type) {
		case *history.InsertValues, *history.InsertQuery:
			if strings.EqualFold(st.Table(), rel) {
				continue
			}
		}
		out = append(out, st)
		kept = append(kept, i)
	}
	return out, kept
}

// InsertBranches builds the right-hand side of the §10 split for rel:
// the union of, for every insert into rel, the inserted tuples with the
// remaining rel-statements of the history applied on top. It returns
// nil if the history contains no inserts into rel.
func InsertBranches(h history.History, rel string, db *storage.Database) (algebra.Query, error) {
	rel = strings.ToLower(rel)
	cur := map[string]algebra.Query{}
	for _, st := range h {
		r := strings.ToLower(st.Table())
		if _, ok := cur[r]; !ok {
			cur[r] = &algebra.Scan{Rel: r}
		}
		if iq, ok := st.(*history.InsertQuery); ok {
			for rr := range algebra.BaseRelations(iq.Query) {
				if _, ok := cur[rr]; !ok {
					cur[rr] = &algebra.Scan{Rel: rr}
				}
			}
		}
	}

	var branches []algebra.Query
	for _, st := range h {
		r := strings.ToLower(st.Table())
		if r == rel {
			switch x := st.(type) {
			case *history.InsertValues:
				if len(x.Rows) > 0 {
					rl, err := db.Relation(rel)
					if err != nil {
						return nil, err
					}
					branches = append(branches, &algebra.Singleton{Sch: rl.Schema, Tuples: x.Rows})
				}
				// The insert does not transform existing branches.
				q, err := stepQuery(st, cur, db)
				if err != nil {
					return nil, err
				}
				cur[r] = q
				continue
			case *history.InsertQuery:
				branches = append(branches, algebra.SubstituteScans(x.Query, cur))
				q, err := stepQuery(st, cur, db)
				if err != nil {
					return nil, err
				}
				cur[r] = q
				continue
			}
			// Updates/deletes transform every open branch, mirroring how
			// the pulled-up union's right side sees the history suffix.
			for bi, b := range branches {
				saved := cur[rel]
				cur[rel] = b
				nb, err := stepQuery(st, cur, db)
				cur[rel] = saved
				if err != nil {
					return nil, err
				}
				branches[bi] = nb
			}
		}
		q, err := stepQuery(st, cur, db)
		if err != nil {
			return nil, err
		}
		cur[strings.ToLower(st.Table())] = q
	}
	if len(branches) == 0 {
		return nil, nil
	}
	out := branches[0]
	for _, b := range branches[1:] {
		out = &algebra.Union{L: out, R: b}
	}
	return out, nil
}
