package reenact

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// ordersDB is the running example instance (Fig. 1).
func ordersDB() *storage.Database {
	s := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
	r := storage.NewRelation(s)
	r.Add(
		schema.Tuple{types.Int(11), types.String("UK"), types.Int(20), types.Int(5)},
		schema.Tuple{types.Int(12), types.String("UK"), types.Int(50), types.Int(5)},
		schema.Tuple{types.Int(13), types.String("US"), types.Int(60), types.Int(3)},
		schema.Tuple{types.Int(14), types.String("US"), types.Int(30), types.Int(4)},
	)
	db := storage.NewDatabase()
	db.AddRelation(r)
	return db
}

// assertReenactsFaithfully checks R_H(D) == H(D), the core guarantee of
// Def. 3.
func assertReenactsFaithfully(t *testing.T, db *storage.Database, h history.History) {
	t.Helper()
	qs, err := Queries(h, db, nil)
	if err != nil {
		t.Fatalf("Queries: %v", err)
	}
	applied := db.Clone()
	if err := h.Apply(applied); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for rel := range h.Relations() {
		got, err := algebra.Eval(qs[rel], db)
		if err != nil {
			t.Fatalf("Eval(%s): %v", qs[rel], err)
		}
		want, err := applied.Relation(rel)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsBag(want) {
			t.Errorf("reenactment of %s diverges:\nreenacted: %swant: %s\nquery: %s",
				rel, got, want, qs[rel])
		}
	}
}

func TestReenactPaperHistory(t *testing.T) {
	h, err := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
		UPDATE orders SET fee = fee - 2 WHERE price <= 30 AND fee >= 10;
	`)
	if err != nil {
		t.Fatal(err)
	}
	assertReenactsFaithfully(t, ordersDB(), h)
}

func TestReenactDelete(t *testing.T) {
	h, _ := sql.ParseStatements(`
		DELETE FROM orders WHERE price < 30;
		UPDATE orders SET fee = fee + 1 WHERE country = 'US';
	`)
	assertReenactsFaithfully(t, ordersDB(), h)
}

func TestReenactInsertValues(t *testing.T) {
	h, _ := sql.ParseStatements(`
		INSERT INTO orders VALUES (15, 'DE', 80, 6);
		UPDATE orders SET fee = 0 WHERE price >= 70;
	`)
	assertReenactsFaithfully(t, ordersDB(), h)
}

func TestReenactInsertQuerySelfReference(t *testing.T) {
	// The query must see the reenacted state of its inputs at the
	// insert's position, not the base state.
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 99 WHERE price >= 60;
		INSERT INTO orders SELECT id + 100, country, price, fee FROM orders WHERE fee = 99;
		UPDATE orders SET fee = fee + 1 WHERE fee = 99;
	`)
	assertReenactsFaithfully(t, ordersDB(), h)
}

func TestReenactMultiRelation(t *testing.T) {
	db := ordersDB()
	arch := storage.NewRelation(schema.New("archive",
		schema.Col("id", types.KindInt),
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	))
	db.AddRelation(arch)
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		INSERT INTO archive SELECT * FROM orders WHERE fee = 0;
		UPDATE archive SET fee = 1 WHERE price >= 55;
	`)
	assertReenactsFaithfully(t, db, h)
}

func TestReenactWithFilterRestrictsInput(t *testing.T) {
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	filters := Filters{"orders": expr.Ge(expr.Column("price"), expr.IntConst(50))}
	q, err := QueryForRelation(h, "orders", ordersDB(), filters)
	if err != nil {
		t.Fatal(err)
	}
	out, err := algebra.Eval(q, ordersDB())
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 2 {
		t.Errorf("filtered reenactment returned %d tuples, want 2", out.Len())
	}
}

func TestStripInsertsOn(t *testing.T) {
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 1 WHERE price > 1;
		INSERT INTO orders VALUES (15, 'DE', 80, 6);
		DELETE FROM orders WHERE fee > 90;
	`)
	stripped, kept := StripInsertsOn(h, "orders")
	if len(stripped) != 2 || len(kept) != 2 || kept[0] != 0 || kept[1] != 2 {
		t.Errorf("StripInsertsOn = %v / %v", stripped, kept)
	}
	// Inserts into other relations survive.
	stripped2, _ := StripInsertsOn(h, "other")
	if len(stripped2) != 3 {
		t.Errorf("foreign-relation strip removed statements: %v", stripped2)
	}
}

// TestInsertSplitEquivalence is the §10 theorem in executable form:
// base-part ∪ insert-branches must equal the full reenactment.
func TestInsertSplitEquivalence(t *testing.T) {
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 2 WHERE price >= 40;
		INSERT INTO orders VALUES (15, 'DE', 80, 6), (16, 'FR', 10, 1);
		UPDATE orders SET fee = fee + 1 WHERE price >= 60;
		DELETE FROM orders WHERE fee >= 7;
		INSERT INTO orders VALUES (17, 'JP', 90, 0);
		UPDATE orders SET fee = fee + 10 WHERE price >= 85;
	`)
	db := ordersDB()

	full, err := QueryForRelation(h, "orders", db, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantRel, err := algebra.Eval(full, db)
	if err != nil {
		t.Fatal(err)
	}

	noIns, _ := StripInsertsOn(h, "orders")
	base, err := QueryForRelation(noIns, "orders", db, nil)
	if err != nil {
		t.Fatal(err)
	}
	branches, err := InsertBranches(h, "orders", db)
	if err != nil {
		t.Fatal(err)
	}
	if branches == nil {
		t.Fatal("expected insert branches")
	}
	gotRel, err := algebra.Eval(&algebra.Union{L: base, R: branches}, db)
	if err != nil {
		t.Fatal(err)
	}
	if !gotRel.EqualAsBag(wantRel) {
		t.Errorf("split ≠ full:\nsplit: %sfull: %s", gotRel, wantRel)
	}
}

func TestInsertBranchesNilWithoutInserts(t *testing.T) {
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	br, err := InsertBranches(h, "orders", ordersDB())
	if err != nil {
		t.Fatal(err)
	}
	if br != nil {
		t.Errorf("expected nil branches, got %s", br)
	}
}

// TestReenactRandomHistories fuzz-checks Def. 3 over random histories
// of updates, deletes and inserts.
func TestReenactRandomHistories(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	cols := []string{"price", "fee"}
	for trial := 0; trial < 80; trial++ {
		var h history.History
		n := 1 + rng.Intn(6)
		for i := 0; i < n; i++ {
			col := cols[rng.Intn(len(cols))]
			c := int64(rng.Intn(100))
			cond := expr.Ge(expr.Column(col), expr.IntConst(c))
			if rng.Intn(2) == 0 {
				cond = expr.Lt(expr.Column(col), expr.IntConst(c))
			}
			switch rng.Intn(4) {
			case 0:
				h = append(h, &history.Delete{Rel: "orders", Where: cond})
			case 1:
				h = append(h, &history.InsertValues{Rel: "orders", Rows: []schema.Tuple{{
					types.Int(int64(100 + trial)), types.String("XX"),
					types.Int(int64(rng.Intn(100))), types.Int(int64(rng.Intn(10))),
				}}})
			default:
				h = append(h, &history.Update{Rel: "orders",
					Set: []history.SetClause{{
						Col: "fee",
						E:   expr.Add(expr.Column("fee"), expr.IntConst(int64(rng.Intn(5)))),
					}},
					Where: cond})
			}
		}
		assertReenactsFaithfully(t, ordersDB(), h)

		// And the split must agree too.
		db := ordersDB()
		full, err := QueryForRelation(h, "orders", db, nil)
		if err != nil {
			t.Fatal(err)
		}
		want, err := algebra.Eval(full, db)
		if err != nil {
			t.Fatal(err)
		}
		noIns, _ := StripInsertsOn(h, "orders")
		base, err := QueryForRelation(noIns, "orders", db, nil)
		if err != nil {
			t.Fatal(err)
		}
		q := base
		branches, err := InsertBranches(h, "orders", db)
		if err != nil {
			t.Fatal(err)
		}
		if branches != nil {
			q = &algebra.Union{L: base, R: branches}
		}
		got, err := algebra.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		if !got.EqualAsBag(want) {
			t.Fatalf("trial %d: split ≠ full for history:\n%s", trial, h)
		}
	}
}
