// Package replica is the replication subsystem: WAL-streaming read
// replicas and the router that spreads reads across them.
//
// The leader's WAL is the history itself (one CRC'd record per
// statement, seq == version), so replication is just shipping that
// record stream: a follower bootstraps from the leader's checkpoint
// images plus a bounded WAL fetch, then applies the live stream
// through the engine's indexed append path, staying a warm,
// queryable copy. Reads carry an optional min_version bound
// (read-your-writes): the serving replica blocks until it has caught
// up to the client's last observed version instead of answering
// stale. The router health-checks every backend, routes each read to
// the least-loaded backend already at the requested version, and
// forwards appends to the leader.
package replica

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/service"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
)

// Options tunes a follower.
type Options struct {
	// LeaderURL is the leader's base URL (e.g. http://10.0.0.1:8080).
	LeaderURL string
	// Client performs the control requests (checkpoints, status); the
	// live stream uses its transport without a client timeout. Defaults
	// to a client with a 30s timeout.
	Client *http.Client
	// ReconnectMin/ReconnectMax bound the stream retry backoff
	// (defaults 100ms / 5s).
	ReconnectMin, ReconnectMax time.Duration
	// StatusEvery is the leader poll cadence feeding the lag gauge
	// (default 1s; the stream itself advances the observed leader
	// version too).
	StatusEvery time.Duration
	// Logf receives connection lifecycle messages. Nil discards them.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Client == nil {
		o.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if o.ReconnectMin <= 0 {
		o.ReconnectMin = 100 * time.Millisecond
	}
	if o.ReconnectMax <= 0 {
		o.ReconnectMax = 5 * time.Second
	}
	if o.StatusEvery <= 0 {
		o.StatusEvery = time.Second
	}
	o.LeaderURL = strings.TrimRight(o.LeaderURL, "/")
	return o
}

func (o Options) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// Replica is a follower: an in-memory engine kept in sync with the
// leader by applying its WAL stream. It holds the full history (time
// travel needs every statement), re-bootstrapping from the leader on
// restart — the leader's WAL is the single durable copy.
type Replica struct {
	opts   Options
	engine *core.Engine

	mu             sync.Mutex
	connected      bool
	everConnected  bool
	leaderVersion  int
	recordsApplied int64
	reconnects     int64
	lastErr        string
}

// Engine returns the replica's engine (read-only by convention: the
// history only advances through the stream).
func (r *Replica) Engine() *core.Engine { return r.engine }

// ReplicationStatus implements service.ReplicationReporter.
func (r *Replica) ReplicationStatus() service.ReplicationStatus {
	applied := r.engine.Version()
	r.mu.Lock()
	defer r.mu.Unlock()
	lv := r.leaderVersion
	if applied > lv {
		lv = applied
	}
	return service.ReplicationStatus{
		LeaderURL:      r.opts.LeaderURL,
		Connected:      r.connected,
		AppliedVersion: applied,
		LeaderVersion:  lv,
		Lag:            lv - applied,
		RecordsApplied: r.recordsApplied,
		Reconnects:     r.reconnects,
		LastError:      r.lastErr,
	}
}

// Bootstrap builds a follower from the leader's durable state: the
// base checkpoint (version 0 — what-if queries time-travel to
// arbitrary versions, so the full history matters), the newest
// checkpoint C (sparing the replay of statements 1..C), and the WAL
// records 1..C for the statement log. The live tail past C arrives
// through Run.
func Bootstrap(ctx context.Context, opts Options) (*Replica, error) {
	opts = opts.withDefaults()
	r := &Replica{opts: opts}

	baseRaw, err := r.fetch(ctx, "/v1/checkpoint?version=0")
	if err != nil {
		return nil, fmt.Errorf("replica: fetching base checkpoint: %w", err)
	}
	baseVer, base, err := persist.DecodeCheckpoint(baseRaw)
	if err != nil {
		return nil, fmt.Errorf("replica: base checkpoint: %w", err)
	}
	if baseVer != 0 {
		return nil, fmt.Errorf("replica: base checkpoint claims version %d", baseVer)
	}

	newestRaw, err := r.fetch(ctx, "/v1/checkpoint")
	if err != nil {
		return nil, fmt.Errorf("replica: fetching newest checkpoint: %w", err)
	}
	ckptVer, ckpt, err := persist.DecodeCheckpoint(newestRaw)
	if err != nil {
		return nil, fmt.Errorf("replica: newest checkpoint: %w", err)
	}

	checkpoints := map[int]*storage.Database{}
	var current *storage.Database
	var mutators []storage.Mutator
	if ckptVer > 0 {
		stmts, err := r.fetchWAL(ctx, 1, ckptVer)
		if err != nil {
			return nil, fmt.Errorf("replica: fetching WAL 1..%d: %w", ckptVer, err)
		}
		mutators = make([]storage.Mutator, len(stmts))
		for i, st := range stmts {
			mutators[i] = st
		}
		checkpoints[ckptVer] = ckpt
		current = ckpt.Clone()
	} else {
		current = ckpt // a second decode of the base: an independent copy
	}
	r.engine = core.New(storage.RestoreVersioned(base, mutators, checkpoints, current))
	r.setLeaderVersion(ckptVer)
	opts.logf("replica: bootstrapped at version %d from %s (checkpoint@%d)", r.engine.Version(), opts.LeaderURL, ckptVer)
	return r, nil
}

// Run streams the leader's WAL from the replica's current version
// until ctx ends, reconnecting with backoff, and polls the leader's
// status for the lag gauge. It blocks; run it in a goroutine.
func (r *Replica) Run(ctx context.Context) {
	go r.pollStatus(ctx)
	backoff := r.opts.ReconnectMin
	for ctx.Err() == nil {
		err := r.streamOnce(ctx)
		if ctx.Err() != nil {
			return
		}
		r.noteDisconnect(err)
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return
		}
		backoff *= 2
		if backoff > r.opts.ReconnectMax {
			backoff = r.opts.ReconnectMax
		}
	}
}

// streamOnce opens one live stream and applies it until it breaks.
func (r *Replica) streamOnce(ctx context.Context) error {
	from := r.engine.Version() + 1
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/v1/wal?from=%d", r.opts.LeaderURL, from), nil)
	if err != nil {
		return err
	}
	// The stream lives until torn down: the control client's timeout
	// must not apply, only its transport.
	client := &http.Client{Transport: r.opts.Client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("leader returned %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	r.noteConnect(from)
	br := bufio.NewReader(resp.Body)
	for {
		seq, payload, err := persist.ReadRecord(br)
		if err != nil {
			// io.EOF / ErrTorn: the connection died (cleanly or
			// mid-record); reconnect picks up at the applied version.
			return fmt.Errorf("stream from seq %d: %w", r.engine.Version()+1, err)
		}
		if err := r.apply(ctx, seq, payload); err != nil {
			return err
		}
	}
}

// apply parses and applies one streamed record, enforcing seq
// continuity against the local history.
func (r *Replica) apply(ctx context.Context, seq uint64, payload []byte) error {
	want := uint64(r.engine.Version()) + 1
	if seq != want {
		return fmt.Errorf("stream record seq %d, want %d", seq, want)
	}
	st, err := sql.ParseStatement(string(payload))
	if err != nil {
		return fmt.Errorf("stream record %d: %w", seq, err)
	}
	if _, err := r.engine.AppendCtx(ctx, []history.Statement{st}); err != nil {
		return fmt.Errorf("applying record %d (%s): %w", seq, st, err)
	}
	r.mu.Lock()
	r.recordsApplied++
	if int(seq) > r.leaderVersion {
		r.leaderVersion = int(seq)
	}
	r.mu.Unlock()
	return nil
}

// pollStatus keeps the observed leader version fresh while the stream
// idles, so the lag gauge reflects appends the replica has not even
// seen yet.
func (r *Replica) pollStatus(ctx context.Context) {
	tick := time.NewTicker(r.opts.StatusEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		raw, err := r.fetch(ctx, "/v1/status")
		if err != nil {
			continue
		}
		var st service.StatusResponse
		if json.Unmarshal(raw, &st) == nil {
			r.setLeaderVersion(st.Version)
		}
	}
}

// fetch performs one bounded control GET against the leader.
func (r *Replica) fetch(ctx context.Context, path string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", r.opts.LeaderURL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("GET %s: %d: %s", path, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	return io.ReadAll(resp.Body)
}

// fetchWAL reads the bounded record range [from, to] as parsed
// statements (the bootstrap catch-up fetch).
func (r *Replica) fetchWAL(ctx context.Context, from, to int) ([]history.Statement, error) {
	req, err := http.NewRequestWithContext(ctx, "GET", fmt.Sprintf("%s/v1/wal?from=%d&to=%d", r.opts.LeaderURL, from, to), nil)
	if err != nil {
		return nil, err
	}
	client := &http.Client{Transport: r.opts.Client.Transport}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return nil, fmt.Errorf("%d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
	}
	br := bufio.NewReader(resp.Body)
	out := make([]history.Statement, 0, to-from+1)
	next := uint64(from)
	for {
		seq, payload, err := persist.ReadRecord(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if seq != next {
			return nil, fmt.Errorf("record seq %d, want %d", seq, next)
		}
		st, err := sql.ParseStatement(string(payload))
		if err != nil {
			return nil, fmt.Errorf("record %d: %w", seq, err)
		}
		out = append(out, st)
		next++
	}
	if got := int(next) - from; got != to-from+1 {
		return nil, fmt.Errorf("short WAL fetch: %d records, want %d", got, to-from+1)
	}
	return out, nil
}

func (r *Replica) setLeaderVersion(v int) {
	r.mu.Lock()
	if v > r.leaderVersion {
		r.leaderVersion = v
	}
	r.mu.Unlock()
}

func (r *Replica) noteConnect(from int) {
	r.mu.Lock()
	r.connected = true
	if r.everConnected {
		r.reconnects++
	}
	r.everConnected = true
	r.lastErr = ""
	r.mu.Unlock()
	r.opts.logf("replica: streaming from %s at seq %d", r.opts.LeaderURL, from)
}

func (r *Replica) noteDisconnect(err error) {
	r.mu.Lock()
	r.connected = false
	if err != nil {
		r.lastErr = err.Error()
	}
	r.mu.Unlock()
	if err != nil {
		r.opts.logf("replica: stream lost: %v", err)
	}
}
