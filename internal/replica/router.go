package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"github.com/mahif/mahif/internal/service"
)

// RouterOptions tunes a Router.
type RouterOptions struct {
	// LeaderURL receives every append and is the read fallback when no
	// replica qualifies.
	LeaderURL string
	// Backends are the read replicas' base URLs.
	Backends []string
	// HealthEvery is the health-poll cadence (default 250ms).
	HealthEvery time.Duration
	// HealthTimeout bounds one health probe (default 2s).
	HealthTimeout time.Duration
	// MaxBodyBytes bounds buffered request bodies (default 1 MiB —
	// bodies are buffered so a failed backend can be retried).
	MaxBodyBytes int64
	// Client performs the proxied requests; defaults to a client
	// without a global timeout (the inbound request context governs).
	Client *http.Client
	// Logf receives backend state transitions. Nil discards them.
	Logf func(format string, args ...any)
}

func (o RouterOptions) withDefaults() RouterOptions {
	if o.HealthEvery <= 0 {
		o.HealthEvery = 250 * time.Millisecond
	}
	if o.HealthTimeout <= 0 {
		o.HealthTimeout = 2 * time.Second
	}
	if o.MaxBodyBytes <= 0 {
		o.MaxBodyBytes = 1 << 20
	}
	if o.Client == nil {
		o.Client = &http.Client{}
	}
	o.LeaderURL = strings.TrimRight(o.LeaderURL, "/")
	for i := range o.Backends {
		o.Backends[i] = strings.TrimRight(o.Backends[i], "/")
	}
	return o
}

func (o RouterOptions) logf(format string, args ...any) {
	if o.Logf != nil {
		o.Logf(format, args...)
	}
}

// backend is one routing target with its health-poll state.
type backend struct {
	url      string
	isLeader bool
	healthy  atomic.Bool
	version  atomic.Int64
	inflight atomic.Int64
	requests atomic.Int64
	errors   atomic.Int64
}

// BackendStatus is one backend's row in the router's status response.
type BackendStatus struct {
	URL      string `json:"url"`
	Leader   bool   `json:"leader"`
	Healthy  bool   `json:"healthy"`
	Version  int    `json:"version"`
	Inflight int    `json:"inflight"`
	Requests int64  `json:"requests_total"`
	Errors   int64  `json:"errors_total"`
}

// RouterStatus is the body of the router's GET /v1/status.
type RouterStatus struct {
	Role string `json:"role"`
	// Version is the newest version any healthy backend reports.
	Version  int             `json:"version"`
	Backends []BackendStatus `json:"backends"`
}

// Router spreads reads over replicas and forwards writes to the
// leader. Routing is least-loaded-at-version: a read bounded by
// min_version goes to the healthy backend with the fewest requests in
// flight among those already at that version, so it is answered
// without blocking; with no qualifying replica it falls back to the
// leader, which by definition is current.
type Router struct {
	opts  RouterOptions
	reads []*backend // replicas first, leader last (fallback order)
	lead  *backend
}

// NewRouter builds a router over a leader and its read replicas.
func NewRouter(opts RouterOptions) (*Router, error) {
	opts = opts.withDefaults()
	if opts.LeaderURL == "" {
		return nil, fmt.Errorf("replica: router needs a leader URL")
	}
	r := &Router{opts: opts}
	for _, u := range opts.Backends {
		r.reads = append(r.reads, &backend{url: u})
	}
	r.lead = &backend{url: opts.LeaderURL, isLeader: true}
	r.reads = append(r.reads, r.lead)
	return r, nil
}

// Run polls backend health until ctx ends. It blocks; run it in a
// goroutine.
func (r *Router) Run(ctx context.Context) {
	tick := time.NewTicker(r.opts.HealthEvery)
	defer tick.Stop()
	for {
		r.pollAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
	}
}

func (r *Router) pollAll(ctx context.Context) {
	for _, b := range r.reads {
		pctx, cancel := context.WithTimeout(ctx, r.opts.HealthTimeout)
		st, err := r.probe(pctx, b.url)
		cancel()
		was := b.healthy.Load()
		if err != nil {
			b.healthy.Store(false)
			if was {
				r.opts.logf("router: backend %s unhealthy: %v", b.url, err)
			}
			continue
		}
		b.version.Store(int64(st.Version))
		b.healthy.Store(true)
		if !was {
			r.opts.logf("router: backend %s healthy at version %d", b.url, st.Version)
		}
	}
}

func (r *Router) probe(ctx context.Context, url string) (service.StatusResponse, error) {
	var st service.StatusResponse
	req, err := http.NewRequestWithContext(ctx, "GET", url+"/v1/status", nil)
	if err != nil {
		return st, err
	}
	resp, err := r.opts.Client.Do(req)
	if err != nil {
		return st, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return st, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&st); err != nil {
		return st, err
	}
	return st, nil
}

// Handler returns the router's API: reads routed by version and load,
// writes and history reads forwarded to the leader, plus the router's
// own status, metrics, and liveness.
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/whatif", r.routeRead)
	mux.HandleFunc("POST /v1/batch", r.routeRead)
	mux.HandleFunc("GET /v1/history", r.toLeader)
	mux.HandleFunc("POST /v1/history", r.toLeader)
	mux.HandleFunc("GET /v1/status", r.handleStatus)
	mux.HandleFunc("GET /metrics", r.handleMetrics)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	return mux
}

// readBody buffers the inbound body so it can be resent on retry.
func (r *Router) readBody(w http.ResponseWriter, req *http.Request) ([]byte, error) {
	defer req.Body.Close()
	return io.ReadAll(http.MaxBytesReader(w, req.Body, r.opts.MaxBodyBytes))
}

// routeRead proxies one read to the best backend, retrying the next
// candidate on transport errors (an HTTP error status is the answer,
// not a routing failure).
func (r *Router) routeRead(w http.ResponseWriter, req *http.Request) {
	body, err := r.readBody(w, req)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	// Peek the read's version bound; garbage bodies route anywhere and
	// get their 400 from the backend.
	var bound struct {
		MinVersion int `json:"min_version"`
	}
	_ = json.Unmarshal(body, &bound)

	tried := map[*backend]bool{}
	for attempt := 0; attempt < 3; attempt++ {
		b := r.pick(bound.MinVersion, tried)
		if b == nil {
			break
		}
		tried[b] = true
		if err := r.proxy(w, req, b, body); err == nil {
			return
		}
		// A canceled or timed-out inbound request surfaces as a proxy
		// transport error too, but it says nothing about the backend:
		// the client hung up, not the replica. Don't mark it unhealthy,
		// don't count a backend error, don't burn retries re-asking on
		// the same dead context.
		if cerr := req.Context().Err(); cerr != nil {
			return
		}
		// Transport failure: the health poll will confirm, but don't
		// wait for it to route around the dead backend.
		b.healthy.Store(false)
		b.errors.Add(1)
		r.opts.logf("router: %s %s via %s failed: retrying", req.Method, req.URL.Path, b.url)
	}
	writeJSONError(w, http.StatusServiceUnavailable, fmt.Errorf("no healthy backend at version ≥ %d", bound.MinVersion))
}

// toLeader proxies appends and history reads to the leader.
func (r *Router) toLeader(w http.ResponseWriter, req *http.Request) {
	body, err := r.readBody(w, req)
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err)
		return
	}
	if err := r.proxy(w, req, r.lead, body); err != nil {
		writeJSONError(w, http.StatusBadGateway, fmt.Errorf("leader unreachable: %v", err))
	}
}

// pick selects the least-loaded healthy backend at or past minVersion,
// preferring replicas (the leader sorts last at equal load only when
// no replica qualifies — it is the explicit fallback).
func (r *Router) pick(minVersion int, tried map[*backend]bool) *backend {
	var best *backend
	for _, b := range r.reads {
		if tried[b] || !b.healthy.Load() {
			continue
		}
		if minVersion > 0 && b.version.Load() < int64(minVersion) && !b.isLeader {
			// A lagging replica would block the read; the leader always
			// qualifies (its status version is at worst one poll stale).
			continue
		}
		if b.isLeader && best != nil {
			continue // a qualifying replica beats the leader
		}
		if best == nil || b.inflight.Load() < best.inflight.Load() {
			best = b
		}
	}
	return best
}

// proxy forwards the request to b and relays the response. A non-nil
// error means nothing was written to w (safe to retry elsewhere).
func (r *Router) proxy(w http.ResponseWriter, req *http.Request, b *backend, body []byte) error {
	b.inflight.Add(1)
	defer b.inflight.Add(-1)
	b.requests.Add(1)
	out, err := http.NewRequestWithContext(req.Context(), req.Method, b.url+req.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		return err
	}
	if ct := req.Header.Get("Content-Type"); ct != "" {
		out.Header.Set("Content-Type", ct)
	}
	resp, err := r.opts.Client.Do(out)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "X-Mahif-Served-By"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Mahif-Backend", b.url)
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// The status line and headers are already on the wire, so the
		// response cannot be retried against another backend; all we
		// can do is record the truncation instead of swallowing it.
		// Client disconnects land here too and are not the backend's
		// fault, so only its counter moves on a genuine mid-body break.
		if req.Context().Err() == nil {
			b.errors.Add(1)
		}
		r.opts.logf("router: %s %s via %s: response copy aborted after headers: %v",
			req.Method, req.URL.Path, b.url, err)
	}
	return nil
}

func (r *Router) handleStatus(w http.ResponseWriter, req *http.Request) {
	st := RouterStatus{Role: "router"}
	for _, b := range r.reads {
		bs := BackendStatus{
			URL:      b.url,
			Leader:   b.isLeader,
			Healthy:  b.healthy.Load(),
			Version:  int(b.version.Load()),
			Inflight: int(b.inflight.Load()),
			Requests: b.requests.Load(),
			Errors:   b.errors.Load(),
		}
		if bs.Healthy && bs.Version > st.Version {
			st.Version = bs.Version
		}
		st.Backends = append(st.Backends, bs)
	}
	writeJSON(w, http.StatusOK, st)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	var b strings.Builder
	m := func(name, help, typ string) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
	}
	m("mahif_router_backend_healthy", "1 while the backend passes health polls.", "gauge")
	m("mahif_router_backend_version", "History version the backend last reported.", "gauge")
	m("mahif_router_backend_inflight", "Requests currently proxied to the backend.", "gauge")
	m("mahif_router_backend_requests_total", "Requests proxied to the backend.", "counter")
	m("mahif_router_backend_errors_total", "Transport failures talking to the backend.", "counter")
	for _, bk := range r.reads {
		l := fmt.Sprintf("{backend=%q,leader=\"%t\"}", bk.url, bk.isLeader)
		fmt.Fprintf(&b, "mahif_router_backend_healthy%s %d\n", l, boolInt(bk.healthy.Load()))
		fmt.Fprintf(&b, "mahif_router_backend_version%s %d\n", l, bk.version.Load())
		fmt.Fprintf(&b, "mahif_router_backend_inflight%s %d\n", l, bk.inflight.Load())
		fmt.Fprintf(&b, "mahif_router_backend_requests_total%s %d\n", l, bk.requests.Load())
		fmt.Fprintf(&b, "mahif_router_backend_errors_total%s %d\n", l, bk.errors.Load())
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

func boolInt(v bool) int {
	if v {
		return 1
	}
	return 0
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(body)
}

func writeJSONError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, service.ErrorResponse{Error: err.Error()})
}
