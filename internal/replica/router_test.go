package replica

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// routerOver builds a router over the given backend URLs with every
// backend pre-marked healthy (no health-poll goroutine), capturing log
// lines.
func routerOver(t *testing.T, leaderURL string, backendURLs []string) (*Router, *strings.Builder, *sync.Mutex) {
	t.Helper()
	var mu sync.Mutex
	var logs strings.Builder
	r, err := NewRouter(RouterOptions{
		LeaderURL: leaderURL,
		Backends:  backendURLs,
		Logf: func(format string, args ...any) {
			mu.Lock()
			defer mu.Unlock()
			fmt.Fprintf(&logs, format+"\n", args...)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range r.reads {
		b.healthy.Store(true)
	}
	return r, &logs, &mu
}

// TestRouterCanceledReadLeavesHealthUntouched is the regression test
// for the cancellation path of routeRead: a client hanging up mid-proxy
// surfaces as a transport error, but it says nothing about the backend.
// Before the fix the router marked the backend unhealthy, counted a
// backend error, and burned its remaining retries re-asking siblings on
// the same dead context.
func TestRouterCanceledReadLeavesHealthUntouched(t *testing.T) {
	release := make(chan struct{})
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Hold the request open until the client gives up.
		select {
		case <-req.Context().Done():
		case <-release:
		}
	}))
	defer backend.Close()
	defer close(release)

	r, _, _ := routerOver(t, backend.URL, nil)

	ctx, cancel := context.WithCancel(context.Background())
	req := httptest.NewRequest("POST", "/v1/whatif", strings.NewReader(`{}`)).WithContext(ctx)
	rec := httptest.NewRecorder()
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	r.routeRead(rec, req)

	b := r.lead
	if !b.healthy.Load() {
		t.Error("canceled read marked the backend unhealthy")
	}
	if n := b.errors.Load(); n != 0 {
		t.Errorf("canceled read counted %d backend errors, want 0", n)
	}
	if n := b.requests.Load(); n != 1 {
		t.Errorf("canceled read burned retries: %d proxy attempts, want 1", n)
	}
}

// TestRouterDeadBackendStillPenalized pins the other side of the
// distinction: a genuine transport failure (backend gone, inbound
// context alive) must still mark the backend unhealthy, count an
// error, and retry the next candidate.
func TestRouterDeadBackendStillPenalized(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {}))
	dead.Close() // refuse all connections
	alive := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.WriteHeader(http.StatusOK)
		fmt.Fprintln(w, `{}`)
	}))
	defer alive.Close()

	r, _, _ := routerOver(t, alive.URL, []string{dead.URL})

	req := httptest.NewRequest("POST", "/v1/whatif", strings.NewReader(`{}`))
	rec := httptest.NewRecorder()
	r.routeRead(rec, req)

	if rec.Code != http.StatusOK {
		t.Fatalf("read failed with %d despite a healthy fallback", rec.Code)
	}
	db := r.reads[0]
	if db.healthy.Load() {
		t.Error("dead backend still marked healthy")
	}
	if n := db.errors.Load(); n != 1 {
		t.Errorf("dead backend error counter = %d, want 1", n)
	}
}

// TestRouterMidResponseFailureCounted is the regression test for the
// proxy tail: a backend dying after the status line is on the wire
// cannot be retried, but before the fix the copy error was silently
// discarded — no log line, no error counter, a truncated body
// indistinguishable from a healthy response in the router's metrics.
func TestRouterMidResponseFailureCounted(t *testing.T) {
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		// Promise more bytes than we send, then die: the client's body
		// read fails after headers.
		w.Header().Set("Content-Length", "1000")
		w.WriteHeader(http.StatusOK)
		w.Write([]byte("partial"))
		if f, ok := w.(http.Flusher); ok {
			f.Flush()
		}
		conn, _, err := w.(http.Hijacker).Hijack()
		if err == nil {
			conn.Close()
		}
	}))
	defer backend.Close()

	r, logs, mu := routerOver(t, backend.URL, nil)

	req := httptest.NewRequest("POST", "/v1/whatif", strings.NewReader(`{}`))
	rec := httptest.NewRecorder()
	r.routeRead(rec, req)

	// Headers were written before the failure, so the client saw the
	// 200 — the truncation must be recorded, not re-routed.
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d, want the already-committed 200", rec.Code)
	}
	b := r.lead
	if n := b.errors.Load(); n != 1 {
		t.Errorf("mid-response failure counted %d backend errors, want 1", n)
	}
	if n := b.requests.Load(); n != 1 {
		t.Errorf("mid-response failure was retried: %d attempts, want 1", n)
	}
	mu.Lock()
	defer mu.Unlock()
	if !strings.Contains(logs.String(), "response copy aborted after headers") {
		t.Errorf("copy failure not logged; logs:\n%s", logs.String())
	}
}
