package replica

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/persist"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/service"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// testBase builds the orders relation the test histories run over.
func testBase() *storage.Database {
	db := storage.NewDatabase()
	orders := storage.NewRelation(schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("price", types.KindFloat),
	))
	for i := 0; i < 20; i++ {
		orders.Add(schema.Tuple{types.Int(int64(i)), types.Float(float64(10 + i))})
	}
	db.AddRelation(orders)
	return db
}

// leaderFixture is a store-backed leader serving the full v1 API over
// a real HTTP listener (the replica dials it).
type leaderFixture struct {
	engine *core.Engine
	store  *persist.Store
	ts     *httptest.Server
}

func newLeader(t *testing.T, history int) *leaderFixture {
	t.Helper()
	store, err := persist.Create(t.TempDir(), testBase(), persist.Options{
		SegmentBytes:    512,
		CheckpointEvery: 7,
		NoSync:          true,
	})
	if err != nil {
		t.Fatal(err)
	}
	engine := core.NewDurable(store)
	for i := 0; i < history; i++ {
		appendLeader(t, engine, i)
	}
	srv := service.New(engine, service.Options{Store: store, Role: "leader"})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); store.Close() })
	return &leaderFixture{engine: engine, store: store, ts: ts}
}

func appendLeader(t *testing.T, engine *core.Engine, i int) {
	t.Helper()
	st, err := sql.ParseStatement(fmt.Sprintf(
		"UPDATE orders SET price = price + 1.0 WHERE id >= %d", i%20))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.AppendCtx(context.Background(), []history.Statement{st}); err != nil {
		t.Fatalf("leader append %d: %v", i, err)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestReplicaFollowsLeader pins the whole follower lifecycle:
// bootstrap from checkpoints + bounded WAL fetch, live streaming,
// byte-identical reads, and the read-your-writes bound end to end.
func TestReplicaFollowsLeader(t *testing.T) {
	lead := newLeader(t, 12) // past CheckpointEvery: bootstrap has a checkpoint AND a WAL tail

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Bootstrap(ctx, Options{LeaderURL: lead.ts.URL, StatusEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Engine().Version(); v == 0 || v > 12 {
		t.Fatalf("bootstrap version %d, want in 1..12", v)
	}
	go rep.Run(ctx)
	waitFor(t, "catch-up", func() bool { return rep.Engine().Version() == 12 })

	// The replica serves reads through the same service handler.
	repSrv := service.New(rep.Engine(), service.Options{Role: "replica", ReadOnly: true, Replication: rep})
	repTS := httptest.NewServer(repSrv.Handler())
	defer repTS.Close()

	query := []byte(`{"modifications":[{"op":"replace","pos":1,"statement":"UPDATE orders SET price = 0 WHERE id < 5"}]}`)
	fromLeader := post(t, lead.ts.URL+"/v1/whatif", query, http.StatusOK)
	fromReplica := post(t, repTS.URL+"/v1/whatif", query, http.StatusOK)
	if !bytes.Equal(fromLeader, fromReplica) {
		t.Fatalf("replica diverges from leader:\n%s\n%s", fromLeader, fromReplica)
	}

	// Appends are rejected locally: the history only advances through
	// the stream.
	post(t, repTS.URL+"/v1/history", []byte(`{"statements":["UPDATE orders SET price = 1 WHERE id = 1"]}`), http.StatusForbidden)

	// Read-your-writes across nodes: append on the leader, read on the
	// replica bounded by the version the append returned. The read may
	// arrive before the record does — the bound makes it wait.
	appendLeader(t, lead.engine, 13)
	bounded := []byte(`{"min_version":13,"modifications":[{"op":"replace","pos":1,"statement":"UPDATE orders SET price = 0 WHERE id < 5"}]}`)
	post(t, repTS.URL+"/v1/whatif", bounded, http.StatusOK)
	// A 200 means the wait held the read until version 13 was applied
	// (an unreachable bound 504s, below) — confirm the replica is there.
	if v := rep.Engine().Version(); v < 13 {
		t.Fatalf("replica at version %d after bounded read, want >= 13", v)
	}

	// An unreachable bound times out with 504 — never a stale 200.
	post(t, repTS.URL+"/v1/whatif",
		[]byte(`{"min_version":100,"timeout_ms":50,"modifications":[{"op":"replace","pos":1,"statement":"UPDATE orders SET price = 0 WHERE id < 5"}]}`),
		http.StatusGatewayTimeout)

	st := rep.ReplicationStatus()
	if !st.Connected || st.AppliedVersion != 13 || st.Lag != 0 || st.RecordsApplied == 0 {
		t.Fatalf("replication status = %+v", st)
	}
}

// TestReplicaReconnects kills the live stream and checks the follower
// re-establishes it and keeps applying.
func TestReplicaReconnects(t *testing.T) {
	lead := newLeader(t, 3)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rep, err := Bootstrap(ctx, Options{LeaderURL: lead.ts.URL, ReconnectMin: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	go rep.Run(ctx)
	waitFor(t, "initial catch-up", func() bool { return rep.Engine().Version() == 3 })

	lead.ts.CloseClientConnections()
	appendLeader(t, lead.engine, 4)
	waitFor(t, "catch-up after reconnect", func() bool { return rep.Engine().Version() == 4 })
	if st := rep.ReplicationStatus(); st.Reconnects == 0 {
		t.Fatalf("replication status after kill = %+v, want reconnects > 0", st)
	}
}

func post(t *testing.T, url string, body []byte, wantCode int) []byte {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: %d %s, want %d", url, resp.StatusCode, buf.String(), wantCode)
	}
	return buf.Bytes()
}

func get(t *testing.T, url string, wantCode int) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: %d %s, want %d", url, resp.StatusCode, buf.String(), wantCode)
	}
	return buf.Bytes()
}

// TestRouter pins routing: appends land on the leader, version-bounded
// reads go to a replica already at the version, and a dead backend is
// routed around without surfacing errors.
func TestRouter(t *testing.T) {
	lead := newLeader(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	var replicaURLs []string
	var replicaServers []*httptest.Server
	var reps []*Replica
	for i := 0; i < 2; i++ {
		rep, err := Bootstrap(ctx, Options{LeaderURL: lead.ts.URL, ReconnectMin: 5 * time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		go rep.Run(ctx)
		srv := service.New(rep.Engine(), service.Options{Role: "replica", ReadOnly: true, Replication: rep})
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		replicaURLs = append(replicaURLs, ts.URL)
		replicaServers = append(replicaServers, ts)
		reps = append(reps, rep)
	}
	for _, rep := range reps {
		rep := rep
		waitFor(t, "replica catch-up", func() bool { return rep.Engine().Version() == 5 })
	}

	router, err := NewRouter(RouterOptions{
		LeaderURL:   lead.ts.URL,
		Backends:    replicaURLs,
		HealthEvery: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	go router.Run(ctx)
	routerTS := httptest.NewServer(router.Handler())
	defer routerTS.Close()

	waitFor(t, "backends healthy", func() bool {
		var st RouterStatus
		if err := json.Unmarshal(get(t, routerTS.URL+"/v1/status", http.StatusOK), &st); err != nil {
			return false
		}
		healthy := 0
		for _, b := range st.Backends {
			if b.Healthy {
				healthy++
			}
		}
		return healthy == 3
	})

	// An append through the router lands on the leader.
	var app struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(post(t, routerTS.URL+"/v1/history",
		[]byte(`{"statements":["UPDATE orders SET price = price + 1.0 WHERE id >= 3"]}`), http.StatusOK), &app); err != nil {
		t.Fatal(err)
	}
	if app.Version != 6 || lead.engine.Version() != 6 {
		t.Fatalf("append via router: version %d, leader at %d, want 6", app.Version, lead.engine.Version())
	}

	// Read-your-writes through the router: bound by the append's
	// version, every read answers at or past it.
	bounded := []byte(`{"min_version":6,"modifications":[{"op":"replace","pos":1,"statement":"UPDATE orders SET price = 0 WHERE id < 5"}]}`)
	sawReplica := false
	for i := 0; i < 20; i++ {
		resp, err := http.Post(routerTS.URL+"/v1/whatif", "application/json", bytes.NewReader(bounded))
		if err != nil {
			t.Fatal(err)
		}
		backend := resp.Header.Get("X-Mahif-Backend")
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("routed read %d: %d %s (via %s)", i, resp.StatusCode, buf.String(), backend)
		}
		if backend != lead.ts.URL {
			sawReplica = true
		}
	}
	if !sawReplica {
		t.Fatal("no routed read landed on a replica")
	}

	// GET /v1/history through the router reads the leader's log.
	var hist struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(get(t, routerTS.URL+"/v1/history?since=0&limit=2", http.StatusOK), &hist); err != nil {
		t.Fatal(err)
	}
	if hist.Version != 6 {
		t.Fatalf("history via router: version %d, want 6", hist.Version)
	}

	// The router's metrics expose per-backend health.
	if m := string(get(t, routerTS.URL+"/metrics", http.StatusOK)); !strings.Contains(m, "mahif_router_backend_healthy") {
		t.Fatalf("router metrics missing health gauge:\n%s", m)
	}

	// Kill one replica: the router retries the next candidate, so no
	// read ever surfaces the failure. (The process-level kill -9 path
	// is the CI cluster smoke's job.)
	replicaServers[0].CloseClientConnections()
	replicaServers[0].Close()
	for i := 0; i < 10; i++ {
		post(t, routerTS.URL+"/v1/whatif", bounded, http.StatusOK)
	}
}
