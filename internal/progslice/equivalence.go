package progslice

import (
	"context"
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/symbolic"
)

// EquivalenceResult is the outcome of a history equivalence proof.
type EquivalenceResult struct {
	// Equivalent is the verdict; meaningful only when Definitive.
	Equivalent bool
	// Definitive is false when a solver budget was exhausted.
	Definitive bool
	// Counterexample, when not Equivalent, assigns the base attributes
	// of a tuple the two histories treat differently (values are from
	// the solver's real relaxation and may be fractional).
	Counterexample map[string]string
}

// ProveEquivalent checks whether two histories of tuple-independent
// updates/deletes over one relation produce the same result for every
// database admitted by phiD (use expr.True for all databases). This is
// the novel application of the symbolic evaluation technique the paper
// proposes as future work (§14): both histories are executed over a
// shared single-tuple VC-table and the solver searches for a world
// where the results differ — unsatisfiability proves equivalence for
// every tuple-independent input.
//
// Like program slicing, the verdict errs conservatively: budget
// overruns or unsupported constructs report "not proven" rather than a
// wrong "equivalent".
func ProveEquivalent(h1, h2 history.History, s *schema.Schema, phiD expr.Expr, opts compile.Options) (*EquivalenceResult, error) {
	return ProveEquivalentCtx(context.Background(), h1, h2, s, phiD, opts)
}

// ProveEquivalentCtx is ProveEquivalent under a context: the solver
// search observes cancellation at every branch & bound node and the
// call returns ctx.Err() promptly.
func ProveEquivalentCtx(ctx context.Context, h1, h2 history.History, s *schema.Schema, phiD expr.Expr, opts compile.Options) (*EquivalenceResult, error) {
	for i, h := range []history.History{h1, h2} {
		for _, st := range h {
			switch st.(type) {
			case *history.Update, *history.Delete:
			default:
				return nil, fmt.Errorf("progslice: history %d contains %T; equivalence proving supports updates and deletes", i+1, st)
			}
			if !strings.EqualFold(st.Table(), s.Relation) {
				return nil, fmt.Errorf("progslice: statement %q targets %s, not %s", st, st.Table(), s.Relation)
			}
		}
	}
	if phiD == nil {
		phiD = expr.True
	}

	base := symbolic.NewBaseState(s)
	a, err := symbolic.Exec(base, h1, "l")
	if err != nil {
		return nil, err
	}
	b, err := symbolic.Exec(base, h2, "r")
	if err != nil {
		return nil, err
	}

	// A world distinguishes the histories iff the single-tuple results
	// differ (Eq. 19 negated).
	same := symbolic.SameResult(a, b)
	core := expr.AndOf(phiD, expr.Negation(same))
	globals := pruneGlobals(core, a, b)
	formula := expr.AndOf(append([]expr.Expr{core}, globals...)...)

	out, err := compile.SatisfiableCtx(ctx, formula, symbolic.MergeKinds(a, b), opts)
	if err != nil {
		return nil, err
	}
	res := &EquivalenceResult{Definitive: out.Definitive}
	if !out.Definitive {
		return res, nil
	}
	res.Equivalent = !out.Sat
	if out.Sat {
		res.Counterexample = map[string]string{}
		for _, c := range s.Columns {
			name := symbolic.BaseVar(c.Name)
			if v, ok := out.Model[name]; ok {
				res.Counterexample[strings.ToLower(c.Name)] = v.String()
			}
		}
	}
	return res, nil
}
