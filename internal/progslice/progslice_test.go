package progslice

import (
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/types"
)

func orderSchema() *schema.Schema {
	return schema.New("orders",
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
}

func pairOf(t *testing.T, histSQL string, pos int, replSQL string) *history.PaddedPair {
	t.Helper()
	h, err := sql.ParseStatements(histSQL)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := history.ApplyModifications(h, []history.Modification{
		history.Replace{Pos: pos, Stmt: sql.MustParseStatement(replSQL)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

// keepSet runs both slicing algorithms and returns their keep sets.
func keepSet(t *testing.T, pair *history.PaddedPair, phiD expr.Expr) (greedy, dep []int) {
	t.Helper()
	in := &Input{Pair: pair, Schema: orderSchema(), PhiD: phiD}
	g, err := Greedy(in)
	if err != nil {
		t.Fatalf("Greedy: %v", err)
	}
	d, err := Dependency(in)
	if err != nil {
		t.Fatalf("Dependency: %v", err)
	}
	return g.Keep, d.Keep
}

// TestExample8NotASlice is the paper's Example 8: dropping u2 from the
// fee-waiver history is not a valid slice because u2 touches tuples u1
// and u1' disagree on.
func TestExample8NotASlice(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)
	greedy, dep := keepSet(t, pair, expr.True)
	if len(greedy) != 2 {
		t.Errorf("greedy keep = %v, want both statements", greedy)
	}
	if len(dep) != 2 {
		t.Errorf("dependency keep = %v, want both statements", dep)
	}
}

// TestIndependentUpdateSliced: an update over a provably disjoint
// region must be removed by both algorithms.
func TestIndependentUpdateSliced(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE price < 40;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)
	greedy, dep := keepSet(t, pair, expr.True)
	if len(greedy) != 1 || greedy[0] != 0 {
		t.Errorf("greedy keep = %v, want [0]", greedy)
	}
	if len(dep) != 1 || dep[0] != 0 {
		t.Errorf("dependency keep = %v, want [0]", dep)
	}
}

// TestCompressionEnablesSlicing: with Φ_D restricting prices to < 45,
// even an overlapping-looking condition becomes independent.
func TestCompressionEnablesSlicing(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE price >= 40;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)

	// Unconstrained: a tuple with price ≥ 50 satisfies both conditions,
	// so u2 must stay.
	greedy, dep := keepSet(t, pair, expr.True)
	if len(greedy) != 2 || len(dep) != 2 {
		t.Fatalf("without Φ_D: greedy=%v dep=%v, want both kept", greedy, dep)
	}

	// With Φ_D: price ∈ [0, 45): no tuple reaches the modified updates,
	// but u2 still fires on [40,45)… and since neither u1 nor u1' can
	// fire at all, u2 applies identically in both histories: slice to
	// just the modified statement.
	phiD := expr.AndOf(
		expr.Ge(expr.Variable("x0_price"), expr.IntConst(0)),
		expr.Lt(expr.Variable("x0_price"), expr.IntConst(45)),
	)
	greedy, dep = keepSet(t, pair, phiD)
	if len(greedy) != 1 {
		t.Errorf("greedy with Φ_D keep = %v, want [0]", greedy)
	}
	if len(dep) != 1 {
		t.Errorf("dependency with Φ_D keep = %v, want [0]", dep)
	}
}

// TestDeleteDependence: a delete whose condition overlaps the modified
// update must be kept; a disjoint one sliced.
func TestDeleteDependence(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		DELETE FROM orders WHERE price >= 80;
		DELETE FROM orders WHERE price < 30;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)
	greedy, dep := keepSet(t, pair, expr.True)
	want := []int{0, 1}
	for name, got := range map[string][]int{"greedy": greedy, "dependency": dep} {
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s keep = %v, want %v", name, got, want)
		}
	}
}

// TestChainedDependence: u2 writes price, u3 reads it — removing u2
// would change whether u3 fires on modified tuples, so both stay.
func TestChainedDependence(t *testing.T) {
	if testing.Short() {
		t.Skip("chained-dependence slicing is solver-heavy")
	}
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET price = price + 20 WHERE price >= 45;
		UPDATE orders SET fee = fee + 1 WHERE price >= 65;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)
	greedy, _ := keepSet(t, pair, expr.True)
	if len(greedy) != 3 {
		t.Errorf("greedy keep = %v, want all three (chained dependence)", greedy)
	}
}

// TestSliceValidity is the semantic check behind Thm. 4/5: executing
// the sliced histories over every tuple of a concrete database must
// produce the same delta as the full histories.
func TestSliceValidity(t *testing.T) {
	if testing.Short() {
		t.Skip("semantic slice validation reenacts every history variant")
	}
	histories := []struct {
		hist string
		repl string
	}{
		{`
			UPDATE orders SET fee = 0 WHERE price >= 50;
			UPDATE orders SET fee = fee + 5 WHERE price < 40;
			UPDATE orders SET fee = fee + 1 WHERE country = 'UK' AND price >= 55;
			DELETE FROM orders WHERE fee >= 30;
		`, `UPDATE orders SET fee = 0 WHERE price >= 60`},
		{`
			DELETE FROM orders WHERE price < 10;
			UPDATE orders SET fee = fee + 2 WHERE price >= 20;
			UPDATE orders SET fee = 1 WHERE price < 5;
		`, `DELETE FROM orders WHERE price < 15`},
	}
	for hi, hc := range histories {
		pair := pairOf(t, hc.hist, 0, hc.repl)
		for _, algo := range []string{"greedy", "dependency"} {
			in := &Input{Pair: pair, Schema: orderSchema(), PhiD: expr.True}
			var keep []int
			var err error
			if algo == "greedy" {
				var res *Result
				res, err = Greedy(in)
				if res != nil {
					keep = res.Keep
				}
			} else {
				var res *Result
				res, err = Dependency(in)
				if res != nil {
					keep = res.Keep
				}
			}
			if err != nil {
				t.Fatalf("history %d %s: %v", hi, algo, err)
			}
			assertSliceValid(t, pair, keep)
		}
	}
}

// assertSliceValid brute-forces Def. 4 over a grid of single tuples.
func assertSliceValid(t *testing.T, pair *history.PaddedPair, keep []int) {
	t.Helper()
	s := orderSchema()
	slicedO := pair.Orig.Restrict(keep)
	slicedM := pair.Mod.Restrict(keep)
	for _, country := range []string{"UK", "US"} {
		for price := int64(0); price <= 100; price += 5 {
			for fee := int64(0); fee <= 30; fee += 6 {
				tuple := schema.Tuple{types.String(country), types.Int(price), types.Int(fee)}
				dFull := singleTupleDelta(t, s, tuple, pair.Orig, pair.Mod)
				dSlice := singleTupleDelta(t, s, tuple, slicedO, slicedM)
				if dFull != dSlice {
					t.Fatalf("slice %v invalid for tuple %s: full delta %q, sliced %q",
						keep, tuple, dFull, dSlice)
				}
			}
		}
	}
}

// singleTupleDelta runs both histories over a singleton database and
// renders the delta canonically.
func singleTupleDelta(t *testing.T, s *schema.Schema, tuple schema.Tuple, ho, hm history.History) string {
	t.Helper()
	run := func(h history.History) string {
		db := newSingleton(s, tuple)
		if err := h.Apply(db); err != nil {
			t.Fatal(err)
		}
		rel, _ := db.Relation(s.Relation)
		if rel.Len() == 0 {
			return "∅"
		}
		return rel.Tuples[0].Key()
	}
	a, b := run(ho), run(hm)
	if a == b {
		return ""
	}
	return "-" + a + "/+" + b
}
