package progslice

import (
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/symbolic"
)

// pruneGlobals performs a cone-of-influence reduction: of all defining
// equalities x_{A,i} = if θ then e else prev accumulated by the
// symbolic executions, only those transitively reachable from the
// variables of the core formula are kept. Update chains for attributes
// the slicing condition never looks at (the common case: conditions
// mention selection attributes, updates write payload attributes)
// disappear entirely, which keeps the MILP small. Non-definition
// conjuncts are always kept.
func pruneGlobals(core expr.Expr, states ...*symbolic.State) []expr.Expr {
	type def struct {
		conj expr.Expr
		rhs  expr.Expr
		used bool
	}
	var order []string // definition order, for deterministic output
	defs := map[string]*def{}
	var always []expr.Expr
	for _, st := range states {
		for _, g := range st.Global {
			if eq, ok := g.(*expr.Cmp); ok && eq.Op == expr.CmpEq {
				if v, ok := eq.L.(*expr.Var); ok {
					if _, dup := defs[v.Name]; !dup {
						defs[v.Name] = &def{conj: g, rhs: eq.R}
						order = append(order, v.Name)
					}
					continue
				}
			}
			always = append(always, g)
		}
	}

	queue := make([]string, 0, len(defs))
	for v := range expr.Vars(core) {
		queue = append(queue, v)
	}
	for _, g := range always {
		for v := range expr.Vars(g) {
			queue = append(queue, v)
		}
	}
	seen := map[string]bool{}
	for len(queue) > 0 {
		v := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		if seen[v] {
			continue
		}
		seen[v] = true
		d, ok := defs[v]
		if !ok || d.used {
			continue
		}
		d.used = true
		for dep := range expr.Vars(d.rhs) {
			queue = append(queue, dep)
		}
	}

	out := append([]expr.Expr(nil), always...)
	for _, name := range order {
		if defs[name].used {
			out = append(out, defs[name].conj)
		}
	}
	return out
}
