package progslice

import (
	"testing"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/sql"
)

func mustHistory(t *testing.T, src string) history.History {
	t.Helper()
	h, err := sql.ParseStatements(src)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func prove(t *testing.T, h1, h2 history.History, phiD expr.Expr) *EquivalenceResult {
	t.Helper()
	res, err := ProveEquivalent(h1, h2, orderSchema(), phiD, compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Definitive {
		t.Fatal("equivalence check hit a solver budget")
	}
	return res
}

func TestEquivalentReorderedDisjointUpdates(t *testing.T) {
	// Updates over disjoint conditions and attributes commute.
	h1 := mustHistory(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 1 WHERE price < 20;
	`)
	h2 := mustHistory(t, `
		UPDATE orders SET fee = fee + 1 WHERE price < 20;
		UPDATE orders SET fee = 0 WHERE price >= 50;
	`)
	if res := prove(t, h1, h2, expr.True); !res.Equivalent {
		t.Errorf("disjoint updates must commute; counterexample %v", res.Counterexample)
	}
}

func TestInequivalentReorderedOverlappingUpdates(t *testing.T) {
	// Overlapping updates do not commute: set-to-0 then +5 ends at 5,
	// +5 then set-to-0 ends at 0.
	h1 := mustHistory(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE price >= 50;
	`)
	h2 := mustHistory(t, `
		UPDATE orders SET fee = fee + 5 WHERE price >= 50;
		UPDATE orders SET fee = 0 WHERE price >= 50;
	`)
	res := prove(t, h1, h2, expr.True)
	if res.Equivalent {
		t.Fatal("overlapping non-commuting updates reported equivalent")
	}
	if res.Counterexample == nil {
		t.Fatal("expected a counterexample")
	}
}

func TestEquivalentMergedDeletes(t *testing.T) {
	// Two deletes equal one delete with the disjunction.
	h1 := mustHistory(t, `
		DELETE FROM orders WHERE price < 10;
		DELETE FROM orders WHERE fee >= 90;
	`)
	h2 := mustHistory(t, `
		DELETE FROM orders WHERE price < 10 OR fee >= 90;
	`)
	if res := prove(t, h1, h2, expr.True); !res.Equivalent {
		t.Errorf("merged deletes must be equivalent; counterexample %v", res.Counterexample)
	}
}

func TestEquivalenceUnderPhiD(t *testing.T) {
	// fee = fee + 0 differs from fee = 10 in general…
	h1 := mustHistory(t, `UPDATE orders SET fee = fee + 0 WHERE price >= 0`)
	h2 := mustHistory(t, `UPDATE orders SET fee = 10 WHERE price >= 0`)
	res := prove(t, h1, h2, expr.True)
	if res.Equivalent {
		t.Fatal("identity vs constant-set must differ without constraints")
	}
	// …but is equivalent over databases where fee is always 10.
	phiD := expr.AndOf(
		expr.Eq(expr.Variable("x0_fee"), expr.IntConst(10)),
		expr.Ge(expr.Variable("x0_price"), expr.IntConst(0)),
	)
	if res := prove(t, h1, h2, phiD); !res.Equivalent {
		t.Errorf("with fee pinned at 10 the histories coincide; counterexample %v", res.Counterexample)
	}
}

func TestEquivalentDeleteThenUpdateVsFilteredUpdate(t *testing.T) {
	// Deleting first means the update only sees survivors; updating a
	// tuple that is deleted afterwards leaves no trace either way.
	h1 := mustHistory(t, `
		DELETE FROM orders WHERE price < 30;
		UPDATE orders SET fee = fee + 1 WHERE price >= 30;
	`)
	h2 := mustHistory(t, `
		UPDATE orders SET fee = fee + 1 WHERE price >= 30;
		DELETE FROM orders WHERE price < 30;
	`)
	if res := prove(t, h1, h2, expr.True); !res.Equivalent {
		t.Errorf("delete/update over complementary conditions must commute; counterexample %v", res.Counterexample)
	}
}

func TestProveEquivalentRejectsInserts(t *testing.T) {
	h1 := history.History{&history.InsertValues{Rel: "orders"}}
	if _, err := ProveEquivalent(h1, h1, orderSchema(), expr.True, compile.Options{}); err == nil {
		t.Error("inserts must be rejected")
	}
}

func TestProveEquivalentRejectsForeignRelation(t *testing.T) {
	h1 := mustHistory(t, `UPDATE other SET fee = 0 WHERE price >= 50`)
	if _, err := ProveEquivalent(h1, h1, orderSchema(), expr.True, compile.Options{}); err == nil {
		t.Error("statements on other relations must be rejected")
	}
}

func TestEquivalentIdenticalHistory(t *testing.T) {
	h := mustHistory(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		DELETE FROM orders WHERE fee > 100;
	`)
	if res := prove(t, h, h, expr.True); !res.Equivalent {
		t.Error("a history must be equivalent to itself")
	}
}
