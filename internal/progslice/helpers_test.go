package progslice

import (
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// newSingleton builds a database holding exactly one tuple.
func newSingleton(s *schema.Schema, tuple schema.Tuple) *storage.Database {
	db := storage.NewDatabase()
	rel := storage.NewRelation(s)
	rel.Add(tuple.Clone())
	db.AddRelation(rel)
	return db
}
