package progslice

import (
	"testing"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/symbolic"
)

// TestExample9DependencyDetection reproduces the paper's Example 9: in
// the running-example history, u2 (the UK surcharge) is dependent on
// the modified u1 because a possible world exists — e.g.
// (UK, 50, 5) — in which a tuple is modified by both updates.
func TestExample9DependencyDetection(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)

	in := &Input{Pair: pair, Schema: orderSchema(), PhiD: expr.True}
	res, err := Dependency(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Keep) != 2 {
		t.Fatalf("u2 must be detected as dependent; keep = %v", res.Keep)
	}
	if res.Stats.Tests != 1 {
		t.Errorf("expected exactly one solver test, got %d", res.Stats.Tests)
	}
}

// TestExample9WitnessWorld mirrors the example's constructive argument:
// the conjunction "affected by u1/u1' and touched by u2" must have a
// concrete possible world, and the solver's witness must satisfy both
// conditions when evaluated concretely.
func TestExample9WitnessWorld(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
	`, 0, `UPDATE orders SET fee = 0 WHERE price >= 60`)

	base := symbolic.NewBaseState(orderSchema())
	orig, err := symbolic.Exec(base, pair.Orig, "h")
	if err != nil {
		t.Fatal(err)
	}
	mod, err := symbolic.Exec(base, pair.Mod, "m")
	if err != nil {
		t.Fatal(err)
	}
	formula := expr.AndOf(
		expr.OrOf(orig.Steps[0].Theta, mod.Steps[0].Theta),
		orig.Steps[1].Theta,
	)
	out, err := compile.Satisfiable(formula, symbolic.MergeKinds(orig, mod), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sat || !out.Definitive {
		t.Fatalf("expected a witness world, got %+v", out)
	}
	v, err := expr.Eval(formula, expr.VarEnv(out.Model))
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsTrue() {
		t.Errorf("witness %v does not satisfy the dependency condition", out.Model)
	}
	// The paper's world: country=UK, price in [50,100]. Check the
	// witness lies in that region (price ≥ 50 from u1's condition since
	// the disjunct chosen must make some branch true, and u2 requires
	// UK ∧ price ≤ 100).
	if c := out.Model["x0_country"]; c.AsString() != "UK" {
		t.Errorf("witness country = %v, want UK", c)
	}
	if p := out.Model["x0_price"].AsFloat(); p < 50-1 || p > 100+1 {
		t.Errorf("witness price = %v, want within [50,100]", p)
	}
}

// TestDependencyStatsScale: the dependency test must issue exactly one
// solver query per non-modified, non-noop statement.
func TestDependencyStatsScale(t *testing.T) {
	pair := pairOf(t, `
		UPDATE orders SET fee = 1 WHERE price >= 90;
		UPDATE orders SET fee = 2 WHERE price >= 80;
		UPDATE orders SET fee = 3 WHERE price >= 70;
		UPDATE orders SET fee = 4 WHERE price >= 60;
	`, 0, `UPDATE orders SET fee = 1 WHERE price >= 95`)
	in := &Input{Pair: pair, Schema: orderSchema(), PhiD: expr.True}
	res, err := Dependency(in)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Tests != 3 {
		t.Errorf("tests = %d, want 3", res.Stats.Tests)
	}
	// All later thresholds overlap [90,∞): everything is dependent.
	if len(res.Keep) != 4 {
		t.Errorf("keep = %v, want all four", res.Keep)
	}
}
