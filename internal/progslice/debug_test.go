package progslice

import (
	"context"
	"testing"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/symbolic"
	"github.com/mahif/mahif/internal/types"
)

// TestSliceRejectionRegression is the regression test for the first
// end-to-end slicing bug: with the fee-waiver history of Example 8,
// the candidate slice {u1} must be rejected — a UK tuple with price in
// [50,60) distinguishes the histories only when u2 runs — and the
// "histories can differ" check must find that witness world.
func TestSliceRejectionRegression(t *testing.T) {
	s := schema.New("orders",
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
	u1 := &history.Update{Rel: "orders",
		Set:   []history.SetClause{{Col: "fee", E: expr.IntConst(0)}},
		Where: expr.Ge(expr.Column("price"), expr.IntConst(50))}
	u1p := &history.Update{Rel: "orders",
		Set:   []history.SetClause{{Col: "fee", E: expr.IntConst(0)}},
		Where: expr.Ge(expr.Column("price"), expr.IntConst(60))}
	u2 := &history.Update{Rel: "orders",
		Set:   []history.SetClause{{Col: "fee", E: expr.Add(expr.Column("fee"), expr.IntConst(5))}},
		Where: expr.AndOf(expr.Eq(expr.Column("country"), expr.StringConst("UK")), expr.Le(expr.Column("price"), expr.IntConst(100)))}

	pair := &history.PaddedPair{
		Orig:        history.History{u1, u2},
		Mod:         history.History{u1p, u2},
		ModifiedPos: []int{0},
	}
	in := &Input{Pair: pair, Schema: s, PhiD: expr.True}
	if err := in.validate(); err != nil {
		t.Fatal(err)
	}
	st := Stats{}
	ok, err := isSlice(context.Background(), in, []int{0}, &st)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("isSlice wrongly certified {0} (Example 8 says it is invalid)")
	}

	// The full histories must be distinguishable, with a valid witness.
	base := symbolic.NewBaseState(s)
	full0, err := symbolic.Exec(base, pair.Orig, "h")
	if err != nil {
		t.Fatal(err)
	}
	full1, err := symbolic.Exec(base, pair.Mod, "m")
	if err != nil {
		t.Fatal(err)
	}
	diff := expr.AndOf(full0.GlobalCond(), full1.GlobalCond(),
		expr.Ne(full0.Vals["fee"], full1.Vals["fee"]))
	out, err := compile.Satisfiable(diff, symbolic.MergeKinds(full0, full1), compile.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Sat || !out.Definitive {
		t.Fatalf("expected a distinguishing world, got %+v", out)
	}
	// The witness lives in the solver's Eps-relaxed real semantics, so
	// exact re-evaluation may disagree at sub-Eps resolution; the price
	// coordinate must still land in the distinguishing band [50, 60).
	p, ok := out.Model["x0_price"]
	if !ok {
		t.Fatal("witness lacks the price coordinate")
	}
	if f := p.AsFloat(); f < 50-1 || f >= 60+1 {
		t.Errorf("witness price = %v, want within [50, 60)", f)
	}
}
