// Package progslice implements program slicing for historical what-if
// queries (§7–§9): it determines subsets of the history pair that are
// provably sufficient for computing the query answer, by symbolically
// executing the candidate histories over a single-tuple VC-table
// constrained by the compressed database Φ_D and checking the slicing
// condition ζ(H, I, Φ_D) with the MILP solver.
//
// Two algorithms are provided: the greedy candidate-shrinking algorithm
// of §8.3.3 (sound for any number of modifications) and the faster
// dependency-based test of §9 for single modifications (Thm. 5).
package progslice

import (
	"context"
	"fmt"
	"time"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/symbolic"
)

// Input is a slicing problem for one relation: an aligned history pair
// containing only tuple-independent statements (updates/deletes; the
// engine strips inserts via the §10 split beforehand), the relation
// schema, and the compressed database constraint.
type Input struct {
	Pair   *history.PaddedPair
	Schema *schema.Schema
	// PhiD is Φ_D over the base variables (symbolic.BaseVar); use
	// expr.True to slice without compression.
	PhiD expr.Expr
	// Compile configures the MILP backend.
	Compile compile.Options
}

// Stats reports slicing effort.
type Stats struct {
	// Tests is the number of solver checks performed.
	Tests int
	// SolverNodes accumulates branch & bound nodes across tests.
	SolverNodes int
	// Indefinite counts tests that hit a solver budget (treated as
	// "keep").
	Indefinite int
	// Duration is wall-clock time spent slicing.
	Duration time.Duration
	// Kept and Removed count statement positions.
	Kept, Removed int
}

// Result is the outcome of slicing: the positions (into Pair) to keep.
type Result struct {
	Keep  []int
	Stats Stats
}

// zetaNodeBudget bounds the branch & bound effort of one full slicing
// condition ζ test, and zetaTotalBudget the cumulative effort across a
// whole greedy run. ζ formulas span four symbolic histories and —
// lacking conflict learning — can make the solver wander; past a budget
// the candidate (resp. every remaining candidate) is conservatively
// kept, making the ζ phase an anytime refinement on top of the
// dependency slice.
const (
	zetaNodeBudget  = 800
	zetaTotalBudget = 16000
)

// validate rejects inputs the symbolic machinery cannot handle.
func (in *Input) validate() error {
	if len(in.Pair.Orig) != len(in.Pair.Mod) {
		return fmt.Errorf("progslice: unaligned history pair (%d vs %d)", len(in.Pair.Orig), len(in.Pair.Mod))
	}
	for i := range in.Pair.Orig {
		for _, st := range []history.Statement{in.Pair.Orig[i], in.Pair.Mod[i]} {
			switch st.(type) {
			case *history.Update, *history.Delete:
			default:
				return fmt.Errorf("progslice: statement %d (%s) is not an update/delete; strip inserts first", i+1, st)
			}
		}
	}
	if in.PhiD == nil {
		in.PhiD = expr.True
	}
	return nil
}

// Greedy runs the §8.3.3 test-and-remove loop. It is seeded with the
// dependency slice of §9 (sound for any number of modifications; see
// Dependency), which already excludes every statement whose condition
// provably never fires on modification-affected tuples. The loop then
// attempts the remaining removals with the full slicing condition ζ
// (Eq. 18), each check bounded by a solver node budget — ζ can certify
// removals dependency analysis cannot (e.g. statements whose effect is
// identical in both histories despite touching affected tuples), and a
// budget overrun conservatively keeps the statement.
func Greedy(in *Input) (*Result, error) {
	return GreedyCtx(context.Background(), in)
}

// GreedyCtx is Greedy under a context: cancellation is observed between
// candidate removals and at every solver node inside each ζ check.
func GreedyCtx(ctx context.Context, in *Input) (*Result, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	start := time.Now()

	seed, err := DependencyCtx(ctx, in)
	if err != nil {
		return nil, err
	}
	st := seed.Stats

	modified := map[int]bool{}
	for _, p := range in.Pair.ModifiedPos {
		modified[p] = true
	}
	n := len(in.Pair.Orig)
	keep := make([]bool, n)
	for _, p := range seed.Keep {
		keep[p] = true
	}

	current := func() []int {
		var out []int
		for i, k := range keep {
			if k {
				out = append(out, i)
			}
		}
		return out
	}

	zetaIn := *in
	if zetaIn.Compile.Solve.MaxNodes == 0 {
		zetaIn.Compile.Solve.MaxNodes = zetaNodeBudget
	}
	zetaNodes := 0
	for i := 0; i < n && zetaNodes < zetaTotalBudget; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !keep[i] || modified[i] {
			continue
		}
		keep[i] = false
		before := st.SolverNodes
		ok, err := isSlice(ctx, &zetaIn, current(), &st)
		if err != nil {
			return nil, err
		}
		zetaNodes += st.SolverNodes - before
		if !ok {
			keep[i] = true
		}
	}

	res := &Result{Keep: current()}
	st.Kept = len(res.Keep)
	st.Removed = n - st.Kept
	st.Duration = time.Since(start)
	res.Stats = st
	return res, nil
}

func noop(s history.Statement) bool { return s.IsNoOp() }

// isSlice checks ζ(H, I, Φ_D): the negation of Eq. 18 conjoined with
// all global conditions must be unsatisfiable.
func isSlice(ctx context.Context, in *Input, positions []int, st *Stats) (bool, error) {
	base := symbolic.NewBaseState(in.Schema)
	full0, err := symbolic.Exec(base, in.Pair.Orig, "h")
	if err != nil {
		return false, err
	}
	full1, err := symbolic.Exec(base, in.Pair.Mod, "m")
	if err != nil {
		return false, err
	}
	sl0, err := symbolic.Exec(base, in.Pair.Orig.Restrict(positions), "hs")
	if err != nil {
		return false, err
	}
	sl1, err := symbolic.Exec(base, in.Pair.Mod.Restrict(positions), "ms")
	if err != nil {
		return false, err
	}

	// ψ per Eq. 18 with Eq. 19 substituted for result equality.
	fullSame := symbolic.SameResult(full0, full1)
	sliceSame := symbolic.SameResult(sl0, sl1)
	cross1 := expr.AndOf(symbolic.SameResult(full0, sl0), symbolic.SameResult(full1, sl1))
	cross2 := expr.AndOf(symbolic.SameResult(full0, sl1), symbolic.SameResult(full1, sl0))
	psi := expr.OrOf(
		expr.AndOf(fullSame, sliceSame),
		expr.AndOf(expr.Negation(fullSame), expr.OrOf(cross1, cross2)),
	)

	// ¬ζ = Φ_D ∧ Φ(all states) ∧ ¬ψ, with the global conditions pruned
	// to the cone of influence of Φ_D ∧ ¬ψ.
	core := expr.AndOf(in.PhiD, expr.Negation(psi))
	globals := pruneGlobals(core, full0, full1, sl0, sl1)
	formula := expr.AndOf(append([]expr.Expr{core}, globals...)...)
	kinds := symbolic.MergeKinds(full0, full1, sl0, sl1)
	out, err := compile.SatisfiableCtx(ctx, formula, kinds, in.Compile)
	if err != nil {
		return false, err
	}
	st.Tests++
	st.SolverNodes += out.Nodes
	if !out.Definitive {
		st.Indefinite++
		return false, nil // cannot prove: keep the statement
	}
	return !out.Sat, nil
}

// Dependency runs the §9 dependency test: statement u_i is kept iff
// some possible world contains a tuple affected both by a modified
// statement (original or replacement condition, Def. 7) and by u_i. The
// check is one satisfiability query per statement over the symbolic
// execution of the two full histories, so its cost is independent of
// the database size and linear in the history length.
//
// Thm. 5 states the soundness for a single modification; the same
// argument extends to modification sequences: a tuple unaffected by
// every modified pair evolves identically in both histories, and an
// affected tuple never satisfies an independent statement's condition
// along either chain, so excluding independent statements preserves the
// delta. The disjunction over all modified positions in `affected`
// implements exactly that.
func Dependency(in *Input) (*Result, error) {
	return DependencyCtx(context.Background(), in)
}

// DependencyCtx is Dependency under a context: cancellation is observed
// between per-statement tests and at every solver node inside each one.
func DependencyCtx(ctx context.Context, in *Input) (*Result, error) {
	if err := in.validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	st := Stats{}

	base := symbolic.NewBaseState(in.Schema)
	orig, err := symbolic.Exec(base, in.Pair.Orig, "h")
	if err != nil {
		return nil, err
	}
	mod, err := symbolic.Exec(base, in.Pair.Mod, "m")
	if err != nil {
		return nil, err
	}
	kinds := symbolic.MergeKinds(orig, mod)

	modified := map[int]bool{}
	// modCond: a tuple is affected by some modified statement pair when
	// it satisfies the original condition in H or the new condition in
	// H[M], each over the symbolic state before that position.
	var modConds []expr.Expr
	for _, p := range in.Pair.ModifiedPos {
		modified[p] = true
		modConds = append(modConds,
			expr.AndOf(orig.Steps[p].LocalBefore, orig.Steps[p].Theta),
			expr.AndOf(mod.Steps[p].LocalBefore, mod.Steps[p].Theta),
		)
	}
	affected := expr.OrOf(modConds...)

	n := len(in.Pair.Orig)
	var keepPos []int
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if modified[i] {
			keepPos = append(keepPos, i)
			continue
		}
		if noop(in.Pair.Orig[i]) && noop(in.Pair.Mod[i]) {
			continue
		}
		// Dependent iff a world lets a tuple reach u_i (alive) matching
		// its condition in either history while also being affected by a
		// modified statement.
		touched := expr.OrOf(
			expr.AndOf(orig.Steps[i].LocalBefore, orig.Steps[i].Theta),
			expr.AndOf(mod.Steps[i].LocalBefore, mod.Steps[i].Theta),
		)
		core := expr.AndOf(in.PhiD, affected, touched)
		globals := pruneGlobals(core, orig, mod)
		out, err := compile.SatisfiableCtx(ctx, expr.AndOf(append([]expr.Expr{core}, globals...)...), kinds, in.Compile)
		if err != nil {
			return nil, err
		}
		st.Tests++
		st.SolverNodes += out.Nodes
		if !out.Definitive {
			st.Indefinite++
		}
		if out.Sat || !out.Definitive {
			keepPos = append(keepPos, i)
		}
	}

	st.Kept = len(keepPos)
	st.Removed = n - st.Kept
	st.Duration = time.Since(start)
	return &Result{Keep: keepPos, Stats: st}, nil
}
