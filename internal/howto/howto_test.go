package howto

import (
	"context"
	"math"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func mustStmt(t testing.TB, src string) history.Statement {
	t.Helper()
	st, err := sql.ParseStatement(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return st
}

// linearEngine has no threshold interactions: every SET-style boost
// moves aggregates linearly.
//
//	v1: INSERT (1,east,10) (2,east,20) (3,west,30) (4,north,5)
//	v2: UPDATE east amounts += 5      → tip 15, 25, 30, 5
func linearEngine(t testing.TB) *core.Engine {
	t.Helper()
	db := storage.NewDatabase()
	db.AddRelation(storage.NewRelation(schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("region", types.KindString),
		schema.Col("amount", types.KindInt),
	)))
	e := core.New(storage.NewVersioned(db))
	if _, err := e.Append(
		mustStmt(t, "INSERT INTO orders VALUES (1, 'east', 10), (2, 'east', 20), (3, 'west', 30), (4, 'north', 5)"),
		mustStmt(t, "UPDATE orders SET amount = amount + 5 WHERE region = 'east'"),
	); err != nil {
		t.Fatal(err)
	}
	return e
}

// thresholdEngine appends a DELETE amount > 30, so a boost scenario's
// effect on COUNT is a step function — not linear.
func thresholdEngine(t testing.TB) *core.Engine {
	t.Helper()
	e := linearEngine(t)
	if _, err := e.Append(mustStmt(t, "DELETE FROM orders WHERE amount > 30")); err != nil {
		t.Fatal(err)
	}
	return e
}

func boostMods(t testing.TB) []history.Modification {
	t.Helper()
	return []history.Modification{history.Replace{Pos: 1,
		Stmt: mustStmt(t, "UPDATE orders SET amount = amount + $boost WHERE region = 'east'")}}
}

func requireCertified(t *testing.T, res *Result) {
	t.Helper()
	c := res.Certificate
	if !c.Certified || !c.Holds {
		t.Fatalf("answer not certified: %+v", c)
	}
	if cmp, err := c.Claimed.Compare(c.Reproduced); err != nil || cmp != 0 {
		t.Fatalf("claimed %v != reproduced %v (err %v)", c.Claimed, c.Reproduced, err)
	}
}

// TestSearchLinear pins the MILP path: east SUM delta is 2·boost − 10
// (the $boost replaces the historical +5 on two east rows), so pushing
// the delta to ≤ −20 needs boost ≤ −5, and the minimal magnitude is
// exactly 5.
func TestSearchLinear(t *testing.T) {
	e := linearEngine(t)
	res, err := Search(context.Background(), e, boostMods(t), Target{
		Query:  "SELECT region, SUM(amount) AS s FROM orders GROUP BY region",
		Group:  []types.Value{types.String("east")},
		Column: "s",
		Op:     "<=",
		Value:  -20,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "milp" {
		t.Fatalf("method: got %q want milp", res.Method)
	}
	if got := res.Binding["boost"]; got.AsFloat() != -5 {
		t.Fatalf("boost: got %v want -5", got)
	}
	if res.Magnitude != 5 {
		t.Fatalf("magnitude: got %v want 5", res.Magnitude)
	}
	if res.Delta.AsFloat() != -20 {
		t.Fatalf("delta: got %v want -20", res.Delta)
	}
	requireCertified(t, res)
}

// TestSearchLinearMultiParam pins minimal-L1 selection across slots:
// the global SUM delta is 2·a + b − 10, so reaching +10 costs |a|=10
// via the east slot but |b|=20 via the west slot — the solver must
// spend the cheaper coefficient.
func TestSearchLinearMultiParam(t *testing.T) {
	e := linearEngine(t)
	mods := []history.Modification{
		history.Replace{Pos: 1,
			Stmt: mustStmt(t, "UPDATE orders SET amount = amount + $a WHERE region = 'east'")},
		history.InsertStmt{Pos: 2,
			Stmt: mustStmt(t, "UPDATE orders SET amount = amount + $b WHERE region = 'west'")},
	}
	res, err := Search(context.Background(), e, mods, Target{
		Query:  "SELECT SUM(amount) AS s FROM orders",
		Column: "s",
		Op:     "==",
		Value:  10,
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "milp" {
		t.Fatalf("method: got %q want milp", res.Method)
	}
	if a := res.Binding["a"].AsFloat(); a != 10 {
		t.Fatalf("a: got %v want 10", a)
	}
	if b := res.Binding["b"].AsFloat(); b != 0 {
		t.Fatalf("b: got %v want 0", b)
	}
	if res.Magnitude != 10 {
		t.Fatalf("magnitude: got %v want 10", res.Magnitude)
	}
	requireCertified(t, res)
}

// TestSearchGrid pins the non-linear fallback: with the DELETE
// amount > 30 downstream, boosting east changes the east COUNT delta as
// a step function — −1 exactly when 10 < boost ≤ 20 (one row pushed
// over the threshold). The grid finds the region, bisection walks the
// magnitude down to the b = 10 boundary.
func TestSearchGrid(t *testing.T) {
	e := thresholdEngine(t)
	res, err := Search(context.Background(), e, boostMods(t), Target{
		Query:  "SELECT region, COUNT(*) AS n FROM orders GROUP BY region",
		Group:  []types.Value{types.String("east")},
		Column: "n",
		Op:     "<=",
		Value:  -1,
	}, Options{Bounds: map[string]Range{"boost": {Lo: 0, Hi: 32}}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Method != "grid" {
		t.Fatalf("method: got %q want grid", res.Method)
	}
	// Bisection localizes the b = 10 boundary to the engine's resolution
	// quantum and snaps outward: the minimal certified boost is 10.001.
	b := res.Binding["boost"].AsFloat()
	if b != 10.001 {
		t.Fatalf("boost: got %v want 10.001", b)
	}
	if res.Delta.AsFloat() != -1 {
		t.Fatalf("delta: got %v want -1", res.Delta)
	}
	if math.Abs(res.Magnitude-b) > 1e-12 {
		t.Fatalf("magnitude %v != |boost| %v", res.Magnitude, b)
	}
	requireCertified(t, res)
}

// TestSearchUnreachable: a target outside the reachable range must
// error rather than return an uncertified best effort.
func TestSearchUnreachable(t *testing.T) {
	e := linearEngine(t)
	_, err := Search(context.Background(), e, boostMods(t), Target{
		Query:  "SELECT region, SUM(amount) AS s FROM orders GROUP BY region",
		Group:  []types.Value{types.String("east")},
		Column: "s",
		Op:     ">=",
		Value:  1000,
	}, Options{Bounds: map[string]Range{"boost": {Lo: -10, Hi: 10}}})
	if err == nil || !strings.Contains(err.Error(), "no satisfying binding") {
		t.Fatalf("want no-satisfying-binding error, got %v", err)
	}
}

func TestSearchValidation(t *testing.T) {
	e := linearEngine(t)
	cases := []struct {
		name   string
		target Target
		opts   Options
		want   string
	}{
		{"bad op",
			Target{Query: "SELECT COUNT(*) AS n FROM orders", Column: "n", Op: "<"},
			Options{}, "unsupported op"},
		{"non-aggregate query",
			Target{Query: "SELECT id FROM orders", Column: "id", Op: "<="},
			Options{}, "aggregate"},
		{"unknown column",
			Target{Query: "SELECT COUNT(*) AS n FROM orders", Column: "bogus", Op: "<=", Value: -1},
			Options{}, "target column"},
		{"bad bounds",
			Target{Query: "SELECT COUNT(*) AS n FROM orders", Column: "n", Op: "<=", Value: -1},
			Options{Bounds: map[string]Range{"boost": {Lo: 5, Hi: 5}}}, "bad bounds"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Search(context.Background(), e, boostMods(t), tc.target, tc.opts)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// TestSearchNoParams: a fully concrete scenario has nothing to search.
func TestSearchNoParams(t *testing.T) {
	e := linearEngine(t)
	mods := []history.Modification{history.Replace{Pos: 1,
		Stmt: mustStmt(t, "UPDATE orders SET amount = amount + 7 WHERE region = 'east'")}}
	_, err := Search(context.Background(), e, mods, Target{
		Query: "SELECT COUNT(*) AS n FROM orders", Column: "n", Op: "<=", Value: 0,
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "no $parameters") {
		t.Fatalf("want no-parameters error, got %v", err)
	}
}
