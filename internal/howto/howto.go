// Package howto answers historical how-to queries: the inverse of a
// what-if. A what-if fixes the hypothetical change and asks for its
// effect; a how-to fixes the desired effect — a condition over an
// aggregate delta, "regional revenue down by at most 500" — and
// searches a parameterized scenario's binding space for the
// minimal-magnitude parameter values that achieve it.
//
// The search compiles the scenario once (core.Template), probes the
// aggregate delta's response to each parameter, and then:
//
//   - when the response is linear in the parameters (the common case
//     for SET col = col + $p style scenarios over SUM/COUNT targets),
//     solves one small MILP — minimize Σ|xᵢ| subject to the linearized
//     target condition and the search bounds — via the same solver that
//     backs program slicing;
//   - otherwise falls back to a bounded grid sweep over the template's
//     batch evaluator, refined by bisection toward the smallest
//     satisfying magnitude (single-parameter scenarios only; non-linear
//     multi-slot search is out of scope).
//
// Every answer carries a differential certificate: the claimed delta is
// reproduced with a fresh WhatIf over the substituted modifications —
// bypassing the template machinery that produced the candidate — and
// the answer is certified only if the reproduction matches exactly and
// the target condition holds on it.
package howto

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/mahif/mahif/internal/compile"
	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/milp"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/types"
)

// Target is the desired effect: a condition over one cell of an
// aggregate delta report.
type Target struct {
	// Query is the aggregate SQL (GROUP BY or a global aggregate).
	Query string `json:"query"`
	// Group selects the row by its grouping-column values; empty
	// selects the global aggregate's single row.
	Group []types.Value `json:"group,omitempty"`
	// Column names the aggregate output column whose delta is
	// constrained.
	Column string `json:"column"`
	// Op is the condition relation: "<=", ">=", or "==".
	Op string `json:"op"`
	// Value is the right-hand side of the condition.
	Value float64 `json:"value"`
}

// Range bounds one parameter's search interval.
type Range struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

// Options tunes a search.
type Options struct {
	// Bounds gives each parameter's search interval (default ±1e6).
	Bounds map[string]Range
	// Tolerance is the linearity-verification and "==" slack
	// (default 1e-6, relative to the magnitude of the delta).
	Tolerance float64
	// GridPoints is the fallback sweep's resolution (default 33).
	GridPoints int
	// MaxBisection caps the fallback's refinement steps (default 24).
	MaxBisection int
	// Resolution is the answer quantum: bisection stops once it has
	// localized the predicate boundary this tightly, and the answer is
	// snapped outward to this grid. It defaults to the slicing
	// compiler's strict-inequality epsilon (compile.Eps) — answers
	// closer than that to a threshold sit in the encoding's blind zone,
	// where program slicing may judge the boundary differently than
	// direct evaluation and the certificate would fail.
	Resolution float64
	// Engine selects the evaluation options (default DefaultOptions).
	Engine *core.Options
	// Workers bounds the grid sweep's parallelism.
	Workers int
}

const defaultBound = 1e6

func (o Options) withDefaults() Options {
	if o.Tolerance <= 0 {
		o.Tolerance = 1e-6
	}
	if o.GridPoints < 3 {
		o.GridPoints = 33
	}
	if o.MaxBisection <= 0 {
		o.MaxBisection = 24
	}
	if o.Resolution <= 0 {
		o.Resolution = compile.Eps
	}
	if o.Engine == nil {
		eng := core.DefaultOptions()
		o.Engine = &eng
	}
	return o
}

// Certificate is the differential proof attached to every answer: the
// claimed delta cell, its reproduction by a fresh what-if over the
// substituted modifications, and whether they match.
type Certificate struct {
	// Certified is true iff the fresh reproduction equals the claimed
	// delta exactly and the target condition holds on it.
	Certified bool `json:"certified"`
	// Claimed is the delta cell the search observed at the answer
	// binding; Reproduced is the fresh what-if's value for it.
	Claimed    types.Value `json:"claimed"`
	Reproduced types.Value `json:"reproduced"`
	// Holds reports the target condition on the reproduced value.
	Holds bool `json:"holds"`
}

// Result is one answered how-to query.
type Result struct {
	// Binding is the minimal-magnitude satisfying parameter assignment.
	Binding map[string]types.Value `json:"binding"`
	// Delta is the target cell's achieved value at the binding.
	Delta types.Value `json:"delta"`
	// Magnitude is Σ|xᵢ| over the binding, the quantity minimized.
	Magnitude float64 `json:"magnitude"`
	// Method is "milp" (linear response, solved exactly) or "grid"
	// (bounded sweep + bisection).
	Method string `json:"method"`
	// Evals counts template evaluations spent searching.
	Evals int `json:"evals"`
	// Certificate is the differential proof (see Certificate).
	Certificate Certificate `json:"certificate"`
}

// searcher carries one search's compiled state.
type searcher struct {
	e      *core.Engine
	tpl    *core.Template
	target Target
	query  core.AggregateQuery
	groups schema.Tuple
	opts   Options
	names  []string // sorted parameter names
	lo, hi []float64
	evals  int
}

// Search answers a how-to query: find the minimal-magnitude binding of
// mods' $parameters whose aggregate delta satisfies target, certified
// by a fresh what-if. All parameters must be numeric.
func Search(ctx context.Context, e *core.Engine, mods []history.Modification, target Target, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	switch target.Op {
	case "<=", ">=", "==":
	default:
		return nil, fmt.Errorf("howto: unsupported op %q (want <=, >=, ==)", target.Op)
	}
	q, err := sql.ParseQuery(target.Query)
	if err != nil {
		return nil, fmt.Errorf("howto: target query: %w", err)
	}
	aq, err := core.NewAggregateQuery(target.Query, q)
	if err != nil {
		return nil, err
	}
	tpl, err := e.CompileTemplateCtx(ctx, mods, *opts.Engine)
	if err != nil {
		return nil, err
	}
	params := tpl.Params()
	if len(params) == 0 {
		return nil, fmt.Errorf("howto: scenario has no $parameters to search over")
	}
	s := &searcher{e: e, tpl: tpl, target: target, query: aq, groups: schema.Tuple(target.Group), opts: opts}
	for name, class := range params {
		if class != "numeric" && class != "any" {
			return nil, fmt.Errorf("howto: parameter $%s is %s; only numeric parameters are searchable", name, class)
		}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)
	for _, name := range s.names {
		r, ok := opts.Bounds[name]
		if !ok {
			r = Range{Lo: -defaultBound, Hi: defaultBound}
		}
		if !(r.Lo < r.Hi) || math.IsNaN(r.Lo) || math.IsInf(r.Lo, 0) || math.IsNaN(r.Hi) || math.IsInf(r.Hi, 0) {
			return nil, fmt.Errorf("howto: bad bounds [%v, %v] for $%s", r.Lo, r.Hi, name)
		}
		s.lo = append(s.lo, r.Lo)
		s.hi = append(s.hi, r.Hi)
	}
	return s.run(ctx)
}

// binding materializes a candidate point as engine values.
func (s *searcher) binding(x []float64) map[string]types.Value {
	b := make(map[string]types.Value, len(s.names))
	for i, name := range s.names {
		b[name] = types.Float(x[i])
	}
	return b
}

// cell extracts the target delta cell from a report set; defined=false
// when the target group is absent from one world (its delta is NULL).
func (s *searcher) cell(reps []core.AggregateReport) (float64, bool, error) {
	if len(reps) != 1 {
		return 0, false, fmt.Errorf("howto: expected 1 report, got %d", len(reps))
	}
	rep := reps[0]
	col := -1
	for j, name := range rep.AggColumns {
		if name == s.target.Column {
			col = j
			break
		}
	}
	if col < 0 {
		return 0, false, fmt.Errorf("howto: target column %q not in aggregate outputs %v", s.target.Column, rep.AggColumns)
	}
	if len(rep.GroupColumns) != len(s.groups) {
		return 0, false, fmt.Errorf("howto: target group has %d values, query groups by %d columns", len(s.groups), len(rep.GroupColumns))
	}
	want := s.groups.Key()
	for _, row := range rep.Rows {
		if row.Group.Key() != want {
			continue
		}
		v := row.Delta[col]
		if v.IsNull() || !v.IsNumeric() {
			return 0, false, nil
		}
		return v.AsFloat(), true, nil
	}
	return 0, false, nil // group absent in both worlds at this binding
}

// measure evaluates the template at x and reads the target cell.
func (s *searcher) measure(ctx context.Context, x []float64) (float64, bool, error) {
	s.evals++
	_, reps, err := s.tpl.EvalAggregatesCtx(ctx, s.binding(x), []core.AggregateQuery{s.query})
	if err != nil {
		return 0, false, err
	}
	return s.cell(reps)
}

// holds tests the target condition on a delta value.
func (s *searcher) holds(f float64) bool {
	switch s.target.Op {
	case "<=":
		return f <= s.target.Value
	case ">=":
		return f >= s.target.Value
	default: // ==
		return math.Abs(f-s.target.Value) <= s.opts.Tolerance*math.Max(1, math.Abs(s.target.Value))
	}
}

func magnitude(x []float64) float64 {
	m := 0.0
	for _, v := range x {
		m += math.Abs(v)
	}
	return m
}

// run drives probe → MILP → grid fallback → certificate.
func (s *searcher) run(ctx context.Context) (*Result, error) {
	if x, ok, err := s.solveLinear(ctx); err != nil {
		return nil, err
	} else if ok {
		return s.finish(ctx, x, "milp")
	}
	x, err := s.solveGrid(ctx)
	if err != nil {
		return nil, err
	}
	return s.finish(ctx, x, "grid")
}

// solveLinear probes the delta's response at the box midpoint, fits a
// linear model, verifies it at the box corners, and minimizes Σ|xᵢ|
// under the linearized condition. ok=false (without error) means the
// response is not linear — or not even defined — over the box, and the
// caller should fall back.
func (s *searcher) solveLinear(ctx context.Context) ([]float64, bool, error) {
	n := len(s.names)
	x0 := make([]float64, n)
	for i := range x0 {
		x0[i] = (s.lo[i] + s.hi[i]) / 2
	}
	f0, def, err := s.measure(ctx, x0)
	if err != nil || !def {
		return nil, false, err
	}
	coef := make([]float64, n)
	for i := range coef {
		h := (s.hi[i] - s.lo[i]) / 4
		xp := append([]float64(nil), x0...)
		xp[i] += h
		fi, def, err := s.measure(ctx, xp)
		if err != nil || !def {
			return nil, false, err
		}
		coef[i] = (fi - f0) / h
	}
	// Verify the fit where it is worst for a linear model: the corners.
	for _, corner := range [][]float64{s.lo, s.hi} {
		pred := f0
		for i := range corner {
			pred += coef[i] * (corner[i] - x0[i])
		}
		got, def, err := s.measure(ctx, corner)
		if err != nil {
			return nil, false, err
		}
		if !def || math.Abs(got-pred) > s.opts.Tolerance*math.Max(1, math.Abs(got)) {
			return nil, false, nil
		}
	}

	// Minimize Σ(xpᵢ+xnᵢ) with xᵢ = xpᵢ − xnᵢ subject to
	// Σ coefᵢ·xᵢ ∘ rhs and the box bounds.
	m := milp.NewModel()
	var terms []milp.Term
	obj := make([]float64, 0, 2*n)
	for i := range coef {
		xp, err := m.AddVar(0, math.Max(0, s.hi[i]), false)
		if err != nil {
			return nil, false, err
		}
		xn, err := m.AddVar(0, math.Max(0, -s.lo[i]), false)
		if err != nil {
			return nil, false, err
		}
		terms = append(terms, milp.Term{Var: xp, Coef: coef[i]}, milp.Term{Var: xn, Coef: -coef[i]})
		obj = append(obj, 1, 1)
		// Keep xᵢ inside its box even when the split allows excursions.
		box := []milp.Term{{Var: xp, Coef: 1}, {Var: xn, Coef: -1}}
		if err := m.AddConstraint(box, milp.GE, s.lo[i]); err != nil {
			return nil, false, err
		}
		if err := m.AddConstraint(box, milp.LE, s.hi[i]); err != nil {
			return nil, false, err
		}
	}
	rhs := s.target.Value - f0
	for i := range coef {
		rhs += coef[i] * x0[i]
	}
	var sense milp.Sense
	switch s.target.Op {
	case "<=":
		sense = milp.LE
	case ">=":
		sense = milp.GE
	default:
		sense = milp.EQ
	}
	if err := m.AddConstraint(terms, sense, rhs); err != nil {
		return nil, false, err
	}
	res, err := m.Optimize(obj, 5000)
	if err != nil {
		return nil, false, err
	}
	if res.Status != milp.Feasible {
		// The linear model says no binding in the box satisfies the
		// target; the grid fallback gets the final word.
		return nil, false, nil
	}
	x := make([]float64, n)
	for i := range x {
		x[i] = clamp(res.X[2*i]-res.X[2*i+1], s.lo[i], s.hi[i])
		// Snap near-integers: workloads are integer-heavy and the exact
		// answer is usually integral.
		if r := math.Round(x[i]); math.Abs(x[i]-r) < 1e-9 {
			x[i] = r
		}
	}
	// The model is linear to tolerance, not exactly; accept only if the
	// real evaluation confirms the condition.
	got, def, err := s.measure(ctx, x)
	if err != nil {
		return nil, false, err
	}
	if !def || !s.holds(got) {
		return nil, false, nil
	}
	return x, true, nil
}

func clamp(v, lo, hi float64) float64 { return math.Min(hi, math.Max(lo, v)) }

// solveGrid is the non-linear fallback: sweep a bounded grid through
// the template's batch evaluator, keep the smallest-magnitude
// satisfying point, and bisect toward the predicate boundary. Only
// single-parameter scenarios are supported.
func (s *searcher) solveGrid(ctx context.Context) ([]float64, error) {
	if len(s.names) != 1 {
		return nil, fmt.Errorf("howto: non-linear search over %d parameters is not supported (single $slot only)", len(s.names))
	}
	lo, hi := s.lo[0], s.hi[0]
	n := s.opts.GridPoints
	pts := make([]float64, n)
	bindings := make([]map[string]types.Value, n)
	for i := range pts {
		pts[i] = lo + (hi-lo)*float64(i)/float64(n-1)
		bindings[i] = s.binding([]float64{pts[i]})
	}
	results, err := s.tpl.EvalAggregatesBatchCtx(ctx, bindings, []core.AggregateQuery{s.query}, s.opts.Workers)
	if err != nil {
		return nil, err
	}
	s.evals += n
	sat := make([]bool, n)
	best := -1
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("howto: grid point %v: %w", pts[i], r.Err)
		}
		f, def, err := s.cell(r.Aggregates)
		if err != nil {
			return nil, err
		}
		sat[i] = def && s.holds(f)
		if sat[i] && (best < 0 || math.Abs(pts[i]) < math.Abs(pts[best])) {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("howto: no satisfying binding in [%v, %v] (%d grid points)", lo, hi, n)
	}
	// Bisect between the best satisfying point and its unsatisfying
	// neighbor on the zero-ward side, shrinking the magnitude while the
	// condition keeps holding.
	good := pts[best]
	var bad float64
	switch {
	case best > 0 && !sat[best-1] && math.Abs(pts[best-1]) < math.Abs(good):
		bad = pts[best-1]
	case best < n-1 && !sat[best+1] && math.Abs(pts[best+1]) < math.Abs(good):
		bad = pts[best+1]
	default:
		return []float64{good}, nil // neighbors satisfy too (or none is zero-ward): grid already minimal
	}
	for i := 0; i < s.opts.MaxBisection && math.Abs(good-bad) > s.opts.Resolution; i++ {
		mid := (good + bad) / 2
		f, def, err := s.measure(ctx, []float64{mid})
		if err != nil {
			return nil, err
		}
		if def && s.holds(f) {
			good = mid
		} else {
			bad = mid
		}
	}
	// Snap outward (away from zero, deeper into the satisfying side) to
	// the resolution grid, so the answer keeps a full quantum of margin
	// from the predicate boundary; keep the raw point if snapping
	// somehow left the satisfying region.
	if snapped := snapOut(good, s.opts.Resolution); snapped != good {
		f, def, err := s.measure(ctx, []float64{snapped})
		if err != nil {
			return nil, err
		}
		if def && s.holds(f) {
			good = snapped
		}
	}
	return []float64{good}, nil
}

// snapOut rounds v away from zero to the next multiple of quantum.
func snapOut(v, quantum float64) float64 {
	if quantum <= 0 || v == 0 {
		return v
	}
	n := math.Ceil(math.Abs(v)/quantum - 1e-9)
	return math.Copysign(n*quantum, v)
}

// finish re-measures the answer, certifies it with a fresh what-if
// over the substituted modifications, and assembles the result.
func (s *searcher) finish(ctx context.Context, x []float64, method string) (*Result, error) {
	binding := s.binding(x)
	claimedF, def, err := s.measure(ctx, x)
	if err != nil {
		return nil, err
	}
	if !def {
		return nil, fmt.Errorf("howto: answer binding lost the target group")
	}
	claimed := types.Float(claimedF)

	// The certificate bypasses the template: fresh alignment, fresh
	// reenactment, fresh aggregation over the substituted constants.
	_, reps, _, err := s.e.WhatIfAggregatesCtx(ctx, s.tpl.SubstitutedMods(binding), []core.AggregateQuery{s.query}, *s.opts.Engine)
	if err != nil {
		return nil, fmt.Errorf("howto: certificate what-if: %w", err)
	}
	cert := Certificate{Claimed: claimed, Reproduced: types.Null()}
	if f, def, err := s.cell(reps); err != nil {
		return nil, fmt.Errorf("howto: certificate: %w", err)
	} else if def {
		cert.Reproduced = types.Float(f)
		cert.Holds = s.holds(f)
		if c, err := claimed.Compare(cert.Reproduced); err == nil && c == 0 {
			cert.Certified = cert.Holds
		}
	}
	return &Result{
		Binding:     binding,
		Delta:       claimed,
		Magnitude:   magnitude(x),
		Method:      method,
		Evals:       s.evals,
		Certificate: cert,
	}, nil
}
