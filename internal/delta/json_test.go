package delta

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

var update = flag.Bool("update", false, "rewrite golden files")

// goldenSet is a fixed delta exercising every value kind, both
// annotation sides, duplicates, and an empty side.
func goldenSet() Set {
	orders := schema.New("orders",
		schema.Col("id", types.KindInt),
		schema.Col("fee", types.KindFloat),
		schema.Col("name", types.KindString),
		schema.Col("vip", types.KindBool),
	)
	items := schema.New("items",
		schema.Col("sku", types.KindString),
		schema.Col("qty", types.KindInt),
	)
	return Set{
		"orders": {
			Relation: "orders",
			Schema:   orders,
			Minus: []schema.Tuple{
				schema.NewTuple(types.Int(1), types.Float(2.5), types.String("ann"), types.Bool(true)),
				schema.NewTuple(types.Int(2), types.Float(10), types.String("bob"), types.Bool(false)),
				schema.NewTuple(types.Int(2), types.Float(10), types.String("bob"), types.Bool(false)),
			},
			Plus: []schema.Tuple{
				schema.NewTuple(types.Int(3), types.Null(), types.String("it's"), types.Bool(true)),
			},
		},
		"items": {
			Relation: "items",
			Schema:   items,
			Plus: []schema.Tuple{
				schema.NewTuple(types.String("a-1"), types.Int(7)),
			},
		},
	}
}

// TestSetGolden pins the v1 wire format: any change to the golden file
// is a breaking change to the mahifd service contract.
func TestSetGolden(t *testing.T) {
	got, err := json.MarshalIndent(goldenSet(), "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	golden := filepath.Join("testdata", "set_v1.golden.json")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("wire format drifted from golden file %s\ngot:\n%s\nwant:\n%s", golden, got, want)
	}
}

// TestSetRoundTrip requires decode(encode(x)) == x, including value
// kinds (Int(10) must not come back as Float) and schema indexes.
func TestSetRoundTrip(t *testing.T) {
	orig := goldenSet()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var back Set
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip lost relations: %d vs %d", len(back), len(orig))
	}
	for rel, r := range orig {
		b := back[rel]
		if b == nil {
			t.Fatalf("round trip lost %s", rel)
		}
		if !b.Equal(r) {
			t.Errorf("%s: round-tripped delta differs:\n%s\nvs\n%s", rel, b, r)
		}
		for i, c := range r.Schema.Columns {
			if b.Schema.Columns[i] != c {
				t.Errorf("%s: column %d drifted: %+v vs %+v", rel, i, b.Schema.Columns[i], c)
			}
		}
		// Kinds must survive exactly, not just compare equal (1 vs 1.0).
		for i, tup := range r.Minus {
			for j, v := range tup {
				if got := b.Minus[i][j]; got.Kind() != v.Kind() {
					t.Errorf("%s: minus[%d][%d] kind %s became %s", rel, i, j, v.Kind(), got.Kind())
				}
			}
		}
		if b.Schema.ColIndex("ID") < 0 && r.Schema.ColIndex("ID") >= 0 {
			t.Errorf("%s: reconstructed schema lost its column index", rel)
		}
	}
}

// TestValueJSONEdgeCases pins the cell encoding rules directly.
func TestValueJSONEdgeCases(t *testing.T) {
	cases := []struct {
		v    types.Value
		want string
	}{
		{types.Int(1), "1"},
		{types.Float(1), "1.0"},
		{types.Float(2.5), "2.5"},
		{types.Float(1e30), "1e+30"},
		{types.Null(), "null"},
		{types.Bool(true), "true"},
		{types.String("a\"b\n"), `"a\"b\n"`},
		{types.Int(-9007199254740993), "-9007199254740993"}, // beyond float53
	}
	// Standard-JSON escapes other encoders emit must decode: escaped
	// slash (Python/PHP default) and surrogate-pair \u sequences.
	decodeOnly := []struct {
		in   string
		want types.Value
	}{
		{`"a\/b"`, types.String("a/b")},
		{"\"\\ud83d\\ude00\"", types.String("😀")}, // surrogate-pair escape
		{`"café"`, types.String("café")},
	}
	for _, c := range decodeOnly {
		var v types.Value
		if err := json.Unmarshal([]byte(c.in), &v); err != nil {
			t.Errorf("unmarshal %s: %v", c.in, err)
			continue
		}
		if !v.Equal(c.want) {
			t.Errorf("unmarshal %s = %v, want %v", c.in, v, c.want)
		}
	}

	for _, c := range cases {
		data, err := json.Marshal(c.v)
		if err != nil {
			t.Fatalf("%v: %v", c.v, err)
		}
		if string(data) != c.want {
			t.Errorf("marshal %v = %s, want %s", c.v, data, c.want)
		}
		var back types.Value
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back.Kind() != c.v.Kind() || !back.Equal(c.v) {
			t.Errorf("round trip %v → %s → %v", c.v, data, back)
		}
	}
}
