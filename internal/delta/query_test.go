package delta

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func TestAsQueryMatchesCompute(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	s := schema.New("t", schema.Col("a", types.KindInt), schema.Col("b", types.KindInt))
	for trial := 0; trial < 100; trial++ {
		mk := func(name string) *storage.Relation {
			r := storage.NewRelation(schema.New(name, s.Columns...))
			for i := 0; i < rng.Intn(15); i++ {
				r.Add(schema.Tuple{types.Int(int64(rng.Intn(4))), types.Int(int64(rng.Intn(4)))})
			}
			return r
		}
		db := storage.NewDatabase()
		cur, mod := mk("cur"), mk("mod")
		db.AddRelation(cur)
		db.AddRelation(mod)

		want := Compute(cur, mod)
		q := AsQuery(&algebra.Scan{Rel: "cur"}, &algebra.Scan{Rel: "mod"}, s)
		res, err := algebra.Eval(q, db)
		if err != nil {
			t.Fatal(err)
		}
		got := FromAnnotated(res)
		if !got.Equal(want) {
			t.Fatalf("trial %d: query delta ≠ computed delta\nquery:\n%s\ncomputed:\n%s", trial, got, want)
		}
	}
}

func TestAsQueryAnnotationSigns(t *testing.T) {
	s := schema.New("t", schema.Col("a", types.KindInt))
	db := storage.NewDatabase()
	cur := storage.NewRelation(schema.New("cur", s.Columns...))
	cur.Add(schema.Tuple{types.Int(1)})
	mod := storage.NewRelation(schema.New("mod", s.Columns...))
	mod.Add(schema.Tuple{types.Int(2)})
	db.AddRelation(cur)
	db.AddRelation(mod)

	q := AsQuery(&algebra.Scan{Rel: "cur"}, &algebra.Scan{Rel: "mod"}, s)
	res, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schema.ColIndex(AnnotationColumn) != 1 {
		t.Fatalf("annotation column missing: %s", res.Schema)
	}
	for _, tup := range res.Tuples {
		sign := tup[1].AsString()
		val := tup[0].AsInt()
		if (val == 1 && sign != "-") || (val == 2 && sign != "+") {
			t.Errorf("tuple %s has wrong annotation", tup)
		}
	}
}

// TestAsQueryOverReenactment exercises the §4 form end to end: the
// delta query evaluated over filtered reenactment queries.
func TestAsQueryOverReenactment(t *testing.T) {
	s := schema.New("r", schema.Col("a", types.KindInt))
	db := storage.NewDatabase()
	r := storage.NewRelation(s)
	for i := int64(0); i < 10; i++ {
		r.Add(schema.Tuple{types.Int(i)})
	}
	db.AddRelation(r)

	// cur = σ_{a<8}(r) acting as H(D); mod = σ_{a<6}(r) as H[M](D).
	cur := &algebra.Select{Cond: expr.Lt(expr.Column("a"), expr.IntConst(8)), In: &algebra.Scan{Rel: "r"}}
	mod := &algebra.Select{Cond: expr.Lt(expr.Column("a"), expr.IntConst(6)), In: &algebra.Scan{Rel: "r"}}
	q := AsQuery(cur, mod, s)
	res, err := algebra.Eval(q, db)
	if err != nil {
		t.Fatal(err)
	}
	got := FromAnnotated(res)
	if len(got.Minus) != 2 || len(got.Plus) != 0 {
		t.Fatalf("delta = %s, want −{6,7}", got)
	}
}
