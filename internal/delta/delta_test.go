package delta

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func rel(vals ...int64) *storage.Relation {
	r := storage.NewRelation(schema.New("t", schema.Col("a", types.KindInt)))
	for _, v := range vals {
		r.Add(schema.Tuple{types.Int(v)})
	}
	return r
}

func TestComputeDisjoint(t *testing.T) {
	d := Compute(rel(1, 2), rel(3, 4))
	if len(d.Minus) != 2 || len(d.Plus) != 2 {
		t.Fatalf("delta = %s", d)
	}
}

func TestComputeIdentical(t *testing.T) {
	d := Compute(rel(1, 2, 3), rel(3, 2, 1))
	if !d.Empty() {
		t.Errorf("identical bags must have empty delta, got %s", d)
	}
}

func TestComputeMultiset(t *testing.T) {
	// old has 1×3, new has 1×1: two copies exclusively in old.
	d := Compute(rel(1, 1, 1), rel(1))
	if len(d.Minus) != 2 || len(d.Plus) != 0 {
		t.Fatalf("multiset delta wrong: %s", d)
	}
}

func TestComputeAnnotationSides(t *testing.T) {
	d := Compute(rel(1), rel(2))
	if d.Minus[0][0].AsInt() != 1 {
		t.Errorf("minus side = %v, want the old tuple", d.Minus[0])
	}
	if d.Plus[0][0].AsInt() != 2 {
		t.Errorf("plus side = %v, want the new tuple", d.Plus[0])
	}
}

func TestComputeEmptyRelations(t *testing.T) {
	if d := Compute(rel(), rel()); !d.Empty() {
		t.Errorf("∅ vs ∅ delta: %s", d)
	}
	if d := Compute(rel(1), rel()); len(d.Minus) != 1 || len(d.Plus) != 0 {
		t.Errorf("delete-all delta: %s", d)
	}
}

func TestSizeAndEqual(t *testing.T) {
	a := Compute(rel(1, 2), rel(2, 3))
	if a.Size() != 2 {
		t.Errorf("Size = %d", a.Size())
	}
	b := Compute(rel(2, 1), rel(3, 2))
	if !a.Equal(b) {
		t.Error("order-insensitive Equal failed")
	}
	c := Compute(rel(1), rel(4))
	if a.Equal(c) {
		t.Error("different deltas compared equal")
	}
}

func TestString(t *testing.T) {
	d := Compute(rel(1), rel(2))
	s := d.String()
	if !strings.Contains(s, "- (1)") || !strings.Contains(s, "+ (2)") {
		t.Errorf("String() = %q", s)
	}
}

func TestSet(t *testing.T) {
	set := Set{
		"a": Compute(rel(1), rel(1)),
		"b": Compute(rel(1), rel(2)),
	}
	if set.Empty() {
		t.Error("set with non-empty member reported empty")
	}
	if set.Size() != 2 {
		t.Errorf("set Size = %d", set.Size())
	}
	if !strings.Contains(set.String(), "Δ t") {
		t.Errorf("set String = %q", set.String())
	}
	empty := Set{"a": Compute(rel(1), rel(1))}
	if !empty.Empty() {
		t.Error("empty set reported non-empty")
	}
	if !strings.Contains(empty.String(), "∅") {
		t.Errorf("empty set String = %q", empty.String())
	}
}

// Property: Δ is symmetric under swapping arguments (sides flip) and
// Δ(A,A) is empty, for random multisets.
func TestDeltaProperties(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	for i := 0; i < 300; i++ {
		mk := func() *storage.Relation {
			n := r.Intn(12)
			vals := make([]int64, n)
			for j := range vals {
				vals[j] = int64(r.Intn(5))
			}
			return rel(vals...)
		}
		a, b := mk(), mk()
		ab := Compute(a, b)
		ba := Compute(b, a)
		if len(ab.Minus) != len(ba.Plus) || len(ab.Plus) != len(ba.Minus) {
			t.Fatalf("asymmetry: %s vs %s", ab, ba)
		}
		if d := Compute(a, a); !d.Empty() {
			t.Fatalf("Δ(A,A) not empty: %s", d)
		}
		// |Δ| = |A| + |B| − 2·|A ∩ B| (multiset intersection).
		ca, _ := a.Counts()
		cb, _ := b.Counts()
		inter := 0
		for k, n := range ca {
			if m := cb[k]; m < n {
				inter += m
			} else {
				inter += n
			}
		}
		if want := a.Len() + b.Len() - 2*inter; ab.Size() != want {
			t.Fatalf("size %d, want %d", ab.Size(), want)
		}
	}
}
