package delta

import (
	"encoding/json"
	"fmt"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// JSON wire format (v1). A Result marshals as
//
//	{
//	  "relation": "orders",
//	  "columns":  [{"name": "id", "type": "int"}, ...],
//	  "minus":    [[1, 2.5, "x", true, null], ...],
//	  "plus":     [...]
//	}
//
// Tuples are arrays in column order; cells use the types.Value JSON
// encoding, which keeps int and float distinct (floats always carry a
// '.' or exponent). Empty sides are omitted. A Set marshals as a JSON
// object keyed by relation name. This format is the service contract
// of cmd/mahifd and is pinned by golden-file tests — extend it
// compatibly (add fields), never repurpose existing ones.

// wireColumn is one schema column on the wire.
type wireColumn struct {
	Name string `json:"name"`
	Type string `json:"type"`
}

// wireResult mirrors Result field-for-field with stable JSON names.
type wireResult struct {
	Relation string         `json:"relation"`
	Columns  []wireColumn   `json:"columns"`
	Minus    []schema.Tuple `json:"minus,omitempty"`
	Plus     []schema.Tuple `json:"plus,omitempty"`
}

// MarshalJSON implements json.Marshaler with the v1 wire format.
func (r *Result) MarshalJSON() ([]byte, error) {
	w := wireResult{Relation: r.Relation, Minus: r.Minus, Plus: r.Plus}
	if r.Schema != nil {
		w.Columns = make([]wireColumn, 0, len(r.Schema.Columns))
		for _, c := range r.Schema.Columns {
			w.Columns = append(w.Columns, wireColumn{Name: c.Name, Type: c.Type.String()})
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler for the v1 wire format,
// reconstructing the schema (including its column-lookup index).
func (r *Result) UnmarshalJSON(data []byte) error {
	var w wireResult
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	cols := make([]schema.Column, 0, len(w.Columns))
	for _, c := range w.Columns {
		k, err := types.ParseKind(c.Type)
		if err != nil {
			return fmt.Errorf("delta: column %s: %w", c.Name, err)
		}
		cols = append(cols, schema.Col(c.Name, k))
	}
	r.Relation = w.Relation
	r.Schema = schema.New(w.Relation, cols...)
	r.Minus = w.Minus
	r.Plus = w.Plus
	for _, side := range [][]schema.Tuple{r.Minus, r.Plus} {
		for _, t := range side {
			if len(t) != len(cols) {
				return fmt.Errorf("delta: %s: tuple arity %d does not match %d columns", w.Relation, len(t), len(cols))
			}
		}
	}
	return nil
}
