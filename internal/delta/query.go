package delta

import (
	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// Annotation column name appended by the delta query.
const AnnotationColumn = "__delta"

// AsQuery builds the delta as a relational algebra query, the form the
// paper uses in §4:
//
//	Π_{A…,−}(Q_cur − Q_mod) ∪ Π_{A…,+}(Q_mod − Q_cur)
//
// The result schema is the input schema plus a trailing string
// annotation column holding "-" or "+". Compute and AsQuery agree (see
// the tests); the engine uses Compute for its hash-based efficiency,
// while AsQuery exists for pushing the whole answer into a single
// query, e.g. when layering Mahif over an external executor.
func AsQuery(cur, mod algebra.Query, s *schema.Schema) algebra.Query {
	minus := annotate(&algebra.Difference{L: cur, R: mod}, s, "-")
	plus := annotate(&algebra.Difference{L: mod, R: cur}, s, "+")
	return &algebra.Union{L: minus, R: plus}
}

func annotate(q algebra.Query, s *schema.Schema, sign string) algebra.Query {
	exprs := make([]algebra.NamedExpr, 0, s.Arity()+1)
	for _, c := range s.Columns {
		exprs = append(exprs, algebra.NamedExpr{Name: c.Name, E: expr.Column(c.Name)})
	}
	exprs = append(exprs, algebra.NamedExpr{Name: AnnotationColumn, E: expr.StringConst(sign)})
	return &algebra.Project{Exprs: exprs, In: q}
}

// FromAnnotated converts the materialized result of an AsQuery
// evaluation back into a Result.
func FromAnnotated(rel *storage.Relation) *Result {
	out := &Result{Relation: rel.Schema.Relation}
	n := rel.Schema.Arity() - 1
	cols := make([]schema.Column, n)
	copy(cols, rel.Schema.Columns[:n])
	out.Schema = schema.New(rel.Schema.Relation, cols...)
	for _, t := range rel.Tuples {
		bare := t[:n]
		if t[n].Kind() == types.KindString && t[n].AsString() == "-" {
			out.Minus = append(out.Minus, bare)
		} else {
			out.Plus = append(out.Plus, bare)
		}
	}
	sortTuples(out.Minus)
	sortTuples(out.Plus)
	return out
}
