// Package delta computes database deltas (§3): the annotated symmetric
// difference Δ(D, D') containing tuples exclusive to D annotated "−"
// and tuples exclusive to D' annotated "+". The computation is
// multiset-aware, which coincides with the paper's set semantics on
// duplicate-free relations and generalizes it safely otherwise.
package delta

import (
	"fmt"
	"sort"
	"strings"

	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
)

// Result is the delta for one relation.
type Result struct {
	Relation string
	Schema   *schema.Schema
	// Minus are tuples present in the old state (H(D)) but not the new
	// (H[M](D)); Plus the converse. Multiplicity differences are
	// reflected by repeated tuples.
	Minus []schema.Tuple
	Plus  []schema.Tuple
}

// Compute returns Δ(oldRel, newRel). The multiset arithmetic runs over
// the hash-based tuple indexes via the bucket-aligned Diff (no
// per-tuple string keys and no re-hashing); only the surviving delta
// tuples pay for a canonical key, to sort the output.
func Compute(oldRel, newRel *storage.Relation) *Result {
	out := &Result{Relation: oldRel.Schema.Relation, Schema: oldRel.Schema}
	oldIx, newIx := oldRel.Index(), newRel.Index()
	oldIx.Diff(newIx, func(t schema.Tuple, d int) {
		for ; d > 0; d-- {
			out.Minus = append(out.Minus, t)
		}
	})
	newIx.Diff(oldIx, func(t schema.Tuple, d int) {
		for ; d > 0; d-- {
			out.Plus = append(out.Plus, t)
		}
	})
	sortTuples(out.Minus)
	sortTuples(out.Plus)
	return out
}

func sortTuples(ts []schema.Tuple) {
	keys := make([]string, len(ts))
	for i, t := range ts {
		keys[i] = t.Key()
	}
	sort.Sort(&byKey{ts: ts, keys: keys})
}

// byKey sorts tuples by their canonical key, computing each key once.
type byKey struct {
	ts   []schema.Tuple
	keys []string
}

func (s *byKey) Len() int           { return len(s.ts) }
func (s *byKey) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *byKey) Swap(i, j int) {
	s.ts[i], s.ts[j] = s.ts[j], s.ts[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// Empty reports whether the delta contains no tuples.
func (r *Result) Empty() bool { return len(r.Minus) == 0 && len(r.Plus) == 0 }

// Size returns the total number of annotated tuples.
func (r *Result) Size() int { return len(r.Minus) + len(r.Plus) }

// Equal reports whether two deltas contain the same annotated multisets.
func (r *Result) Equal(o *Result) bool {
	return tuplesEqual(r.Minus, o.Minus) && tuplesEqual(r.Plus, o.Plus)
}

func tuplesEqual(a, b []schema.Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key() != b[i].Key() {
			return false
		}
	}
	return true
}

// String renders the delta with -/+ annotations.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Δ %s (%d tuples)\n", r.Relation, r.Size())
	for _, t := range r.Minus {
		fmt.Fprintf(&b, "  - %s\n", t)
	}
	for _, t := range r.Plus {
		fmt.Fprintf(&b, "  + %s\n", t)
	}
	return b.String()
}

// Set is the delta of a whole database, keyed by relation name.
type Set map[string]*Result

// Empty reports whether every per-relation delta is empty.
func (s Set) Empty() bool {
	for _, r := range s {
		if !r.Empty() {
			return false
		}
	}
	return true
}

// Size returns the total annotated-tuple count across relations.
func (s Set) Size() int {
	n := 0
	for _, r := range s {
		n += r.Size()
	}
	return n
}

// String renders all non-empty per-relation deltas in name order.
func (s Set) String() string {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, n := range names {
		if s[n].Empty() {
			continue
		}
		b.WriteString(s[n].String())
	}
	if b.Len() == 0 {
		return "Δ ∅ (histories agree)\n"
	}
	return b.String()
}
