package symbolic

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func fig1Relation() *storage.Relation {
	r := storage.NewRelation(schema.New("orders",
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	))
	r.Add(
		schema.Tuple{types.String("UK"), types.Int(20), types.Int(5)},
		schema.Tuple{types.String("UK"), types.Int(50), types.Int(5)},
		schema.Tuple{types.String("US"), types.Int(60), types.Int(3)},
		schema.Tuple{types.String("US"), types.Int(30), types.Int(4)},
	)
	return r
}

// satisfies evaluates Φ_D under the assignment derived from a tuple.
func satisfies(t *testing.T, phi expr.Expr, rel *storage.Relation, tup schema.Tuple) bool {
	t.Helper()
	env := map[string]types.Value{}
	for i, c := range rel.Schema.Columns {
		env[BaseVar(c.Name)] = tup[i]
	}
	v, err := expr.Eval(phi, expr.VarEnv(env))
	if err != nil {
		t.Fatalf("eval %s: %v", phi, err)
	}
	return v.IsTrue()
}

// TestCompressExample7 mirrors the paper's Example 7: grouping Fig. 1
// on Country yields one conjunct per country with tight ranges.
func TestCompressExample7(t *testing.T) {
	rel := fig1Relation()
	phi, err := Compress(rel, CompressOptions{GroupBy: "country", Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Every base tuple satisfies Φ_D (the defining property).
	for _, tup := range rel.Tuples {
		if !satisfies(t, phi, rel, tup) {
			t.Errorf("tuple %s violates Φ_D = %s", tup, phi)
		}
	}
	// The paper's non-example: a UK tuple with price 10 (below the UK
	// group range [20,50]) is excluded.
	if satisfies(t, phi, rel, schema.Tuple{types.String("UK"), types.Int(10), types.Int(5)}) {
		t.Errorf("Φ_D too loose: price 10 admitted: %s", phi)
	}
	// An unknown country is excluded.
	if satisfies(t, phi, rel, schema.Tuple{types.String("DE"), types.Int(30), types.Int(4)}) {
		t.Errorf("Φ_D admits unseen country: %s", phi)
	}
}

func TestCompressNumericGrouping(t *testing.T) {
	rel := fig1Relation()
	phi, err := Compress(rel, CompressOptions{GroupBy: "price", Groups: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, tup := range rel.Tuples {
		if !satisfies(t, phi, rel, tup) {
			t.Errorf("tuple %s violates Φ_D = %s", tup, phi)
		}
	}
}

func TestCompressEmptyRelation(t *testing.T) {
	rel := storage.NewRelation(fig1Relation().Schema)
	phi, err := Compress(rel, CompressOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !expr.IsTriviallyFalse(phi) {
		t.Errorf("empty relation must compress to false, got %s", phi)
	}
}

func TestCompressUnknownGroupBy(t *testing.T) {
	if _, err := Compress(fig1Relation(), CompressOptions{GroupBy: "missing"}); err == nil {
		t.Error("unknown group-by attribute accepted")
	}
}

func TestCompressManyDistinctStringsUnconstrained(t *testing.T) {
	r := storage.NewRelation(schema.New("t",
		schema.Col("id", types.KindInt),
		schema.Col("name", types.KindString),
	))
	for i := 0; i < 50; i++ {
		r.Add(schema.Tuple{types.Int(int64(i)), types.String(string(rune('a'+i%26)) + string(rune('a'+i/26)))})
	}
	phi, err := Compress(r, CompressOptions{GroupBy: "id", Groups: 1, MaxDistinct: 8})
	if err != nil {
		t.Fatal(err)
	}
	// With >8 distinct names, the name column must be unconstrained, so
	// an arbitrary unseen name is admitted (only id must be in range).
	if !satisfies(t, phi, r, schema.Tuple{types.Int(10), types.String("unseen-name")}) {
		t.Errorf("high-cardinality string column should be unconstrained: %s", phi)
	}
}

// TestCompressOverApproximatesProperty is the soundness property of
// §8.3.1: for random relations and any group count, every tuple of the
// relation satisfies Φ_D.
func TestCompressOverApproximatesProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 60; trial++ {
		rel := storage.NewRelation(schema.New("t",
			schema.Col("g", types.KindString),
			schema.Col("x", types.KindInt),
			schema.Col("y", types.KindFloat),
		))
		n := 1 + rng.Intn(40)
		groups := []string{"a", "b", "c", "d"}
		for i := 0; i < n; i++ {
			rel.Add(schema.Tuple{
				types.String(groups[rng.Intn(len(groups))]),
				types.Int(int64(rng.Intn(1000) - 500)),
				types.Float(float64(rng.Intn(1000)) / 10),
			})
		}
		for _, g := range []int{1, 2, 3, 7} {
			phi, err := Compress(rel, CompressOptions{Groups: g})
			if err != nil {
				t.Fatal(err)
			}
			for _, tup := range rel.Tuples {
				if !satisfies(t, phi, rel, tup) {
					t.Fatalf("trial %d groups %d: tuple %s violates Φ_D = %s", trial, g, tup, phi)
				}
			}
		}
	}
}

// TestCompressTighterWithMoreGroups: more groups can only shrink (or
// keep) the admitted region, never grow it; sample random points to
// check monotonicity.
func TestCompressTighterWithMoreGroups(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	rel := storage.NewRelation(schema.New("t",
		schema.Col("x", types.KindInt),
		schema.Col("y", types.KindInt),
	))
	for i := 0; i < 100; i++ {
		rel.Add(schema.Tuple{types.Int(int64(rng.Intn(100))), types.Int(int64(rng.Intn(100)))})
	}
	phi1, err := Compress(rel, CompressOptions{GroupBy: "x", Groups: 1})
	if err != nil {
		t.Fatal(err)
	}
	phi4, err := Compress(rel, CompressOptions{GroupBy: "x", Groups: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		pt := schema.Tuple{types.Int(int64(rng.Intn(120) - 10)), types.Int(int64(rng.Intn(120) - 10))}
		if satisfies(t, phi4, rel, pt) && !satisfies(t, phi1, rel, pt) {
			t.Fatalf("finer compression admits a point the coarser one rejects: %s", pt)
		}
	}
}
