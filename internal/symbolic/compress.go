package symbolic

import (
	"fmt"
	"sort"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

// CompressOptions controls database compression (§8.3.1).
type CompressOptions struct {
	// GroupBy selects the grouping attribute; empty picks the first
	// column.
	GroupBy string
	// Groups is the number of groups (default 2, as in Example 7).
	Groups int
	// MaxDistinct caps the size of IN-style constraints emitted for
	// string attributes within a group; attributes with more distinct
	// values stay unconstrained.
	MaxDistinct int
}

func (o CompressOptions) withDefaults(rel *storage.Relation) CompressOptions {
	if o.Groups <= 0 {
		o.Groups = 2
	}
	if o.MaxDistinct <= 0 {
		o.MaxDistinct = 8
	}
	if o.GroupBy == "" && rel.Schema.Arity() > 0 {
		o.GroupBy = rel.Schema.Columns[0].Name
	}
	return o
}

// Compress lossily summarizes a relation into the constraint Φ_D over
// the base variables of a single-tuple VC-table: rows are partitioned
// into groups on one attribute, and each group contributes a
// conjunction of per-attribute range constraints (numeric) or IN-sets
// (strings/bools). The disjunction over groups over-approximates the
// relation: every tuple of rel satisfies Φ_D.
//
// An empty relation compresses to false (no possible base tuple),
// making every candidate slice trivially valid for base data.
func Compress(rel *storage.Relation, opts CompressOptions) (expr.Expr, error) {
	if rel.Len() == 0 {
		return expr.False, nil
	}
	opts = opts.withDefaults(rel)
	gidx := rel.Schema.ColIndex(opts.GroupBy)
	if gidx < 0 {
		return nil, fmt.Errorf("symbolic: group-by attribute %q not in %s", opts.GroupBy, rel.Schema)
	}

	groups := partition(rel, gidx, opts.Groups)
	var disjuncts []expr.Expr
	for _, rows := range groups {
		if len(rows) == 0 {
			continue
		}
		var conj []expr.Expr
		for ci, col := range rel.Schema.Columns {
			c := summarizeColumn(rel, rows, ci, col.Type, opts.MaxDistinct)
			if c != nil {
				conj = append(conj, c)
			}
		}
		disjuncts = append(disjuncts, expr.AndOf(conj...))
	}
	return expr.Simplify(expr.OrOf(disjuncts...)), nil
}

// partition splits row indices into at most n groups on column gidx:
// numeric columns by equal-frequency quantiles, others by value hash.
func partition(rel *storage.Relation, gidx, n int) [][]int {
	numeric := true
	for _, t := range rel.Tuples {
		if !t[gidx].IsNumeric() {
			numeric = false
			break
		}
	}
	if !numeric {
		buckets := map[string][]int{}
		for i, t := range rel.Tuples {
			buckets[t[gidx].String()] = append(buckets[t[gidx].String()], i)
		}
		keys := make([]string, 0, len(buckets))
		for k := range buckets {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		out := make([][]int, min(n, len(keys)))
		for i, k := range keys {
			g := i % len(out)
			out[g] = append(out[g], buckets[k]...)
		}
		return out
	}
	idx := make([]int, rel.Len())
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		return rel.Tuples[idx[a]][gidx].AsFloat() < rel.Tuples[idx[b]][gidx].AsFloat()
	})
	if n > len(idx) {
		n = len(idx)
	}
	out := make([][]int, n)
	per := (len(idx) + n - 1) / n
	for i, row := range idx {
		out[min(i/per, n-1)] = append(out[min(i/per, n-1)], row)
	}
	return out
}

// summarizeColumn builds the range / IN constraint for one attribute
// within one group, or nil when the attribute cannot be constrained
// (NULLs present, too many distinct strings).
func summarizeColumn(rel *storage.Relation, rows []int, ci int, kind types.Kind, maxDistinct int) expr.Expr {
	v := expr.Variable(BaseVar(rel.Schema.Columns[ci].Name))
	switch kind {
	case types.KindInt, types.KindFloat:
		first := true
		var lo, hi float64
		for _, r := range rows {
			val := rel.Tuples[r][ci]
			if !val.IsNumeric() {
				return nil
			}
			f := val.AsFloat()
			if first {
				lo, hi, first = f, f, false
				continue
			}
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		if first {
			return nil
		}
		loC, hiC := numConst(kind, lo), numConst(kind, hi)
		if lo == hi {
			return expr.Eq(v, loC)
		}
		return expr.AndOf(expr.Ge(v, loC), expr.Le(v, hiC))
	case types.KindString, types.KindBool:
		distinct := map[string]types.Value{}
		for _, r := range rows {
			val := rel.Tuples[r][ci]
			if val.IsNull() || val.Kind() != kind {
				return nil
			}
			distinct[val.String()] = val
			if len(distinct) > maxDistinct {
				return nil
			}
		}
		keys := make([]string, 0, len(distinct))
		for k := range distinct {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var alts []expr.Expr
		for _, k := range keys {
			alts = append(alts, expr.Eq(v, expr.Constant(distinct[k])))
		}
		return expr.OrOf(alts...)
	}
	return nil
}

func numConst(kind types.Kind, f float64) expr.Expr {
	if kind == types.KindInt && f == float64(int64(f)) {
		return expr.IntConst(int64(f))
	}
	return expr.FloatConst(f)
}
