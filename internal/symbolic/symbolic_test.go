package symbolic

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/sql"
	"github.com/mahif/mahif/internal/storage"
	"github.com/mahif/mahif/internal/types"
)

func orderSchema() *schema.Schema {
	return schema.New("orders",
		schema.Col("country", types.KindString),
		schema.Col("price", types.KindInt),
		schema.Col("fee", types.KindInt),
	)
}

func TestNewBaseState(t *testing.T) {
	st := NewBaseState(orderSchema())
	if len(st.Vals) != 3 {
		t.Fatalf("vals = %v", st.Vals)
	}
	v, ok := st.Vals["price"].(*expr.Var)
	if !ok || v.Name != BaseVar("price") {
		t.Errorf("price symbol = %v", st.Vals["price"])
	}
	if st.Kinds[BaseVar("country")] != types.KindString {
		t.Errorf("country kind = %v", st.Kinds[BaseVar("country")])
	}
	if !expr.IsTriviallyTrue(st.Local) {
		t.Errorf("local = %s", st.Local)
	}
}

// TestExecExample6 reproduces the paper's Example 6 / Fig. 10: after
// u1, u2, the fee is a fresh variable constrained by two conditional
// defining equalities.
func TestExecExample6(t *testing.T) {
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
	`)
	st, err := Exec(NewBaseState(orderSchema()), h, "h")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Global) != 2 {
		t.Fatalf("global conjuncts = %d, want 2", len(st.Global))
	}
	fee, ok := st.Vals["fee"].(*expr.Var)
	if !ok || fee.Name != "x_h_fee_2" {
		t.Errorf("final fee symbol = %v", st.Vals["fee"])
	}
	// Unmodified attributes keep their base variables.
	if p := st.Vals["price"].(*expr.Var); p.Name != BaseVar("price") {
		t.Errorf("price symbol churned: %v", p)
	}
	// The first conjunct defines x_h_fee_1 from the base fee.
	first := st.Global[0].String()
	if !strings.Contains(first, "x_h_fee_1") || !strings.Contains(first, BaseVar("price")) {
		t.Errorf("first conjunct = %s", first)
	}
}

func TestExecDeleteStrengthensLocal(t *testing.T) {
	h, _ := sql.ParseStatements(`DELETE FROM orders WHERE price < 30`)
	st, err := Exec(NewBaseState(orderSchema()), h, "h")
	if err != nil {
		t.Fatal(err)
	}
	if expr.IsTriviallyTrue(st.Local) {
		t.Errorf("local condition unchanged by delete: %s", st.Local)
	}
	if len(st.Global) != 0 {
		t.Errorf("delete must not add global conjuncts: %v", st.Global)
	}
}

func TestExecNoOpLeavesStateUntouched(t *testing.T) {
	noop := history.History{&history.Update{Rel: "orders", Set: nil, Where: expr.False}}
	st, err := Exec(NewBaseState(orderSchema()), noop, "h")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Global) != 0 {
		t.Errorf("no-op added conjuncts: %v", st.Global)
	}
	if len(st.Steps) != 1 {
		t.Errorf("no-op must still record a step")
	}
}

func TestExecRejectsInserts(t *testing.T) {
	h := history.History{&history.InsertValues{Rel: "orders"}}
	if _, err := Exec(NewBaseState(orderSchema()), h, "h"); err == nil {
		t.Error("inserts must be rejected (stripped by the engine)")
	}
}

func TestExecSharedBaseDistinctFresh(t *testing.T) {
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	base := NewBaseState(orderSchema())
	a, err := Exec(base, h, "a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Exec(base, h, "b")
	if err != nil {
		t.Fatal(err)
	}
	if expr.Equal(a.Vals["fee"], b.Vals["fee"]) {
		t.Error("fresh variables must differ between tags")
	}
	if !expr.Equal(a.Vals["price"], b.Vals["price"]) {
		t.Error("base variables must be shared")
	}
	if len(base.Global) != 0 {
		t.Error("Exec mutated the base state")
	}
}

// TestPossibleWorldSemantics is Theorem 3 in executable form: for
// random concrete tuples, evaluating the history concretely agrees with
// evaluating the symbolic result under the induced assignment.
func TestPossibleWorldSemantics(t *testing.T) {
	h, _ := sql.ParseStatements(`
		UPDATE orders SET fee = 0 WHERE price >= 50;
		UPDATE orders SET fee = fee + 5 WHERE country = 'UK' AND price <= 100;
		DELETE FROM orders WHERE fee >= 10;
		UPDATE orders SET fee = fee * 2 WHERE price < 25;
	`)
	sym, err := Exec(NewBaseState(orderSchema()), h, "h")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	countries := []string{"UK", "US"}
	for trial := 0; trial < 300; trial++ {
		tuple := schema.Tuple{
			types.String(countries[rng.Intn(2)]),
			types.Int(int64(rng.Intn(120))),
			types.Int(int64(rng.Intn(15))),
		}
		// Concrete execution over the singleton database.
		db := storage.NewDatabase()
		rel := storage.NewRelation(orderSchema())
		rel.Add(tuple.Clone())
		db.AddRelation(rel)
		if err := h.Apply(db); err != nil {
			t.Fatal(err)
		}
		out, _ := db.Relation("orders")

		// Symbolic evaluation under the assignment λ(tuple): solve the
		// defining equalities in order.
		env := map[string]types.Value{
			BaseVar("country"): tuple[0],
			BaseVar("price"):   tuple[1],
			BaseVar("fee"):     tuple[2],
		}
		for _, g := range sym.Global {
			eq := g.(*expr.Cmp)
			v := eq.L.(*expr.Var)
			val, err := expr.Eval(eq.R, expr.VarEnv(env))
			if err != nil {
				t.Fatal(err)
			}
			env[v.Name] = val
		}
		alive, err := expr.Eval(sym.Local, expr.VarEnv(env))
		if err != nil {
			t.Fatal(err)
		}
		if alive.IsTrue() != (out.Len() == 1) {
			t.Fatalf("trial %d: existence mismatch for %s: symbolic %v, concrete %d tuples",
				trial, tuple, alive, out.Len())
		}
		if out.Len() == 1 {
			for col, sym := range sym.Vals {
				want := out.Tuples[0][out.Schema.ColIndex(col)]
				got, err := expr.Eval(sym, expr.VarEnv(env))
				if err != nil {
					t.Fatal(err)
				}
				if !got.Equal(want) {
					t.Fatalf("trial %d: %s mismatch for %s: symbolic %v, concrete %v",
						trial, col, tuple, got, want)
				}
			}
		}
	}
}

func TestSameResultSkipsIdenticalColumns(t *testing.T) {
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	base := NewBaseState(orderSchema())
	a, _ := Exec(base, h, "a")
	b, _ := Exec(base, h, "b")
	cond := SameResult(a, b)
	// Only the fee columns differ symbolically; country/price must not
	// appear in the equality.
	vars := expr.Vars(cond)
	if vars[BaseVar("country")] {
		t.Errorf("identical column leaked into SameResult: %s", cond)
	}
}

func TestMergeKinds(t *testing.T) {
	h, _ := sql.ParseStatements(`UPDATE orders SET fee = 0 WHERE price >= 50`)
	base := NewBaseState(orderSchema())
	a, _ := Exec(base, h, "a")
	b, _ := Exec(base, h, "b")
	kinds := MergeKinds(a, b)
	if kinds["x_a_fee_1"] != types.KindInt || kinds["x_b_fee_1"] != types.KindInt {
		t.Errorf("fresh variable kinds missing: %v", kinds)
	}
	if kinds[BaseVar("country")] != types.KindString {
		t.Errorf("base kind missing: %v", kinds)
	}
}
