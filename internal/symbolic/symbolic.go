// Package symbolic implements the VC-table machinery of §8: symbolic
// execution of update/delete statements over a single-tuple symbolic
// instance with possible-world semantics (Def. 6, Thm. 3), and lossy
// compression of a concrete database into range constraints Φ_D
// (§8.3.1) that over-approximate its data distribution.
//
// A State is a VC-table with exactly one symbolic tuple: per-attribute
// symbolic expressions (variables), the tuple's local condition φ(t),
// and the conjuncts of the global condition Φ. Executing an update adds
// one fresh variable per assigned attribute plus the defining equality
//
//	x_{A,i} = if θ(t_{i-1}) then e(t_{i-1}) else t_{i-1}.A
//
// to Φ, avoiding the exponential blow-up of the naive two-tuples-per-
// update encoding; deletes strengthen the local condition with ¬θ.
package symbolic

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// State is a single-tuple VC-table for one relation.
type State struct {
	Schema *schema.Schema
	// Vals maps lowercase column name → symbolic value expression.
	Vals map[string]expr.Expr
	// Local is the tuple's local condition φ(t).
	Local expr.Expr
	// Global holds the conjuncts of the global condition Φ added by
	// update steps.
	Global []expr.Expr
	// Kinds records the type of every symbolic variable introduced so
	// far (base and fresh), for the MILP compiler.
	Kinds map[string]types.Kind
	// Steps records per-statement metadata used by the §9 dependency
	// test.
	Steps []StepInfo
}

// StepInfo captures the symbolic view of one executed statement.
type StepInfo struct {
	// Theta is the statement condition expressed over the symbolic
	// state *before* the statement ran (false for padding no-ops).
	Theta expr.Expr
	// LocalBefore is the local condition before the statement ran.
	LocalBefore expr.Expr
}

// BaseVar names the symbolic variable for column col of the initial
// tuple (shared across all histories compared by a slicing test).
func BaseVar(col string) string { return "x0_" + strings.ToLower(col) }

// NewBaseState builds D0: one tuple of fresh base variables with local
// condition true.
func NewBaseState(s *schema.Schema) *State {
	st := &State{
		Schema: s,
		Vals:   make(map[string]expr.Expr, s.Arity()),
		Local:  expr.True,
		Kinds:  make(map[string]types.Kind, s.Arity()),
	}
	for _, c := range s.Columns {
		name := BaseVar(c.Name)
		st.Vals[strings.ToLower(c.Name)] = expr.Variable(name)
		st.Kinds[name] = c.Type
	}
	return st
}

// clone duplicates the state so executions of different histories share
// base variables but nothing else.
func (st *State) clone() *State {
	out := &State{
		Schema: st.Schema,
		Vals:   make(map[string]expr.Expr, len(st.Vals)),
		Local:  st.Local,
		Global: append([]expr.Expr(nil), st.Global...),
		Kinds:  make(map[string]types.Kind, len(st.Kinds)),
		Steps:  append([]StepInfo(nil), st.Steps...),
	}
	for k, v := range st.Vals {
		out.Vals[k] = v
	}
	for k, v := range st.Kinds {
		out.Kinds[k] = v
	}
	return out
}

// bind rewrites a statement expression over attributes into a symbolic
// expression over the current tuple.
func (st *State) bind(e expr.Expr) expr.Expr {
	repl := make(map[string]expr.Expr, len(st.Vals))
	for col, v := range st.Vals {
		repl[col] = v
	}
	return expr.SubstCols(e, repl)
}

// Exec symbolically executes a history of updates and deletes over a
// copy of st. tag disambiguates the fresh variables of different
// histories compared in one formula. Insert statements are rejected:
// the engine strips them beforehand via the §10 split.
func Exec(st *State, h history.History, tag string) (*State, error) {
	out := st.clone()
	for i, raw := range h {
		switch u := raw.(type) {
		case *history.Update:
			if err := out.execUpdate(u, i, tag); err != nil {
				return nil, err
			}
		case *history.Delete:
			theta := out.bind(u.Where)
			out.Steps = append(out.Steps, StepInfo{Theta: theta, LocalBefore: out.Local})
			out.Local = expr.Simplify(expr.AndOf(out.Local, expr.Negation(theta)))
		default:
			return nil, fmt.Errorf("symbolic: statement %d (%s) is not an update or delete", i+1, raw)
		}
	}
	return out, nil
}

func (st *State) execUpdate(u *history.Update, step int, tag string) error {
	theta := st.bind(u.Where)
	st.Steps = append(st.Steps, StepInfo{Theta: theta, LocalBefore: st.Local})
	if len(u.Set) == 0 || expr.IsTriviallyFalse(expr.Simplify(theta)) {
		return nil // padding no-op: state unchanged
	}
	for _, sc := range u.Set {
		col := strings.ToLower(sc.Col)
		old, ok := st.Vals[col]
		if !ok {
			return fmt.Errorf("symbolic: SET column %q not in schema %s", sc.Col, st.Schema)
		}
		fresh := fmt.Sprintf("x_%s_%s_%d", tag, col, step+1)
		rhs := expr.IfThenElse(theta, st.bind(sc.E), old)
		st.Global = append(st.Global, expr.Eq(expr.Variable(fresh), rhs))
		st.Vals[col] = expr.Variable(fresh)
		idx := st.Schema.ColIndex(col)
		kind := types.KindFloat
		if idx >= 0 {
			kind = st.Schema.Columns[idx].Type
		}
		st.Kinds[fresh] = kind
	}
	return nil
}

// GlobalCond returns the conjunction of the state's global conjuncts.
func (st *State) GlobalCond() expr.Expr { return expr.AndOf(st.Global...) }

// SameResult builds the condition of Eq. 19: two single-tuple states
// produce the same result in a world iff either both tuples exist and
// agree on every attribute, or neither exists. Attributes whose
// symbolic values are structurally identical in both states (e.g. never
// updated) are skipped — they are equal in every world.
func SameResult(a, b *State) expr.Expr {
	var eqs []expr.Expr
	for _, c := range a.Schema.Columns {
		col := strings.ToLower(c.Name)
		if expr.Equal(a.Vals[col], b.Vals[col]) {
			continue
		}
		eqs = append(eqs, expr.Eq(a.Vals[col], b.Vals[col]))
	}
	if expr.Equal(a.Local, b.Local) {
		// Same existence condition in every world: the states agree iff
		// the values agree or the tuple is absent.
		if len(eqs) == 0 {
			return expr.True
		}
		return expr.Simplify(expr.OrOf(expr.AndOf(expr.AndOf(eqs...), a.Local), expr.Negation(a.Local)))
	}
	bothLive := expr.AndOf(expr.AndOf(eqs...), a.Local, b.Local)
	bothGone := expr.AndOf(expr.Negation(a.Local), expr.Negation(b.Local))
	return expr.Simplify(expr.OrOf(bothLive, bothGone))
}

// MergeKinds unions variable-kind maps from several states (they agree
// on shared base variables by construction).
func MergeKinds(states ...*State) map[string]types.Kind {
	out := map[string]types.Kind{}
	for _, st := range states {
		for k, v := range st.Kinds {
			out[k] = v
		}
	}
	return out
}
