package sql

import (
	"fmt"
	"strings"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
)

// RenderStatement renders a history statement as SQL that ParseStatement
// reads back — the WAL encoding of the durable store. UPDATE, DELETE
// and INSERT…VALUES already render SQL through their String methods;
// INSERT…SELECT carries an algebra tree whose String is algebra
// notation (σ, Π, ⋈), so its query is lowered back to SELECT syntax
// here. Statements whose query falls outside the parser's
// select-project-join-union subset (e.g. a hand-built Singleton or
// Difference) have no SQL rendering and are rejected.
func RenderStatement(st history.Statement) (string, error) {
	iq, ok := st.(*history.InsertQuery)
	if !ok {
		return st.String(), nil
	}
	q, err := RenderQuery(iq.Query)
	if err != nil {
		return "", fmt.Errorf("sql: INSERT INTO %s: %w", iq.Rel, err)
	}
	return "INSERT INTO " + iq.Rel + " " + q, nil
}

// RenderQuery renders an algebra query in the shape the parser
// produces — optional Project over optional Select over a left-deep
// Join chain of Scans, combined by Union — back to SELECT syntax.
func RenderQuery(q algebra.Query) (string, error) {
	if u, ok := q.(*algebra.Union); ok {
		l, err := RenderQuery(u.L)
		if err != nil {
			return "", err
		}
		r, err := RenderQuery(u.R)
		if err != nil {
			return "", err
		}
		return l + " UNION ALL " + r, nil
	}
	if a, ok := q.(*algebra.Aggregate); ok {
		return renderAggregate(a)
	}
	return renderSelectCore(q)
}

// renderAggregate renders a γ node the way the parser reads it back:
// grouping items first, aggregate calls after (always with AS — the
// default "col<i>" names are positional, so re-parsing must not have to
// re-derive them), then FROM/WHERE from the input, then GROUP BY.
func renderAggregate(q *algebra.Aggregate) (string, error) {
	var b strings.Builder
	b.WriteString("SELECT ")
	for i, ne := range q.GroupBy {
		if i > 0 {
			b.WriteString(", ")
		}
		if c, ok := ne.E.(*expr.Col); ok && strings.EqualFold(c.Name, ne.Name) {
			b.WriteString(ne.Name)
			continue
		}
		fmt.Fprintf(&b, "%s AS %s", ne.E, ne.Name)
	}
	for i, a := range q.Aggs {
		if i > 0 || len(q.GroupBy) > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s AS %s", a.CallString(), a.Name)
	}
	in := q.In
	var where expr.Expr
	if sel, ok := in.(*algebra.Select); ok {
		where = sel.Cond
		in = sel.In
	}
	from, err := renderFrom(in)
	if err != nil {
		return "", err
	}
	b.WriteString(" FROM ")
	b.WriteString(from)
	if where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(where.String())
	}
	if len(q.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, ne := range q.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(ne.E.String())
		}
	}
	return b.String(), nil
}

func renderSelectCore(q algebra.Query) (string, error) {
	var b strings.Builder
	b.WriteString("SELECT ")

	proj, _ := q.(*algebra.Project)
	if proj != nil {
		for i, ne := range proj.Exprs {
			if i > 0 {
				b.WriteString(", ")
			}
			if c, ok := ne.E.(*expr.Col); ok && strings.EqualFold(c.Name, ne.Name) {
				b.WriteString(ne.Name)
				continue
			}
			fmt.Fprintf(&b, "%s AS %s", ne.E, ne.Name)
		}
		q = proj.In
	} else {
		b.WriteString("*")
	}

	var where expr.Expr
	if sel, ok := q.(*algebra.Select); ok {
		where = sel.Cond
		q = sel.In
	}

	from, err := renderFrom(q)
	if err != nil {
		return "", err
	}
	b.WriteString(" FROM ")
	b.WriteString(from)
	if where != nil {
		b.WriteString(" WHERE ")
		b.WriteString(where.String())
	}
	return b.String(), nil
}

// renderFrom renders a left-deep join chain whose right operands are
// scans (the only FROM shape the grammar can express).
func renderFrom(q algebra.Query) (string, error) {
	switch x := q.(type) {
	case *algebra.Scan:
		return x.Rel, nil
	case *algebra.Join:
		rs, ok := x.R.(*algebra.Scan)
		if !ok {
			return "", fmt.Errorf("join right operand %T has no SQL form", x.R)
		}
		l, err := renderFrom(x.L)
		if err != nil {
			return "", err
		}
		return l + " JOIN " + rs.Rel + " ON " + x.Cond.String(), nil
	}
	return "", fmt.Errorf("query node %T has no SQL form", q)
}
