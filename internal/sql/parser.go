package sql

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

type parser struct {
	toks []token
	pos  int
	src  string
}

func newParser(src string) (*parser, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	return &parser{toks: toks, src: src}, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) errf(format string, args ...any) error {
	t := p.cur()
	return fmt.Errorf("sql: %s (near offset %d in %q)", fmt.Sprintf(format, args...), t.pos, clip(p.src))
}

func clip(s string) string {
	s = strings.TrimSpace(s)
	if len(s) > 60 {
		return s[:57] + "..."
	}
	return s
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.cur().kind == tokKeyword && p.cur().text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if p.cur().kind == tokOp && p.cur().text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q, found %q", op, p.cur().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.cur().kind != tokIdent {
		return "", p.errf("expected identifier, found %q", p.cur().text)
	}
	return p.next().text, nil
}

// ParseStatement parses one UPDATE / DELETE / INSERT statement.
func ParseStatement(src string) (history.Statement, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st, err := p.parseStatement()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after statement")
	}
	return st, nil
}

// ParseStatements parses a ';'-separated script into a history.
func ParseStatements(src string) (history.History, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	var out history.History
	for p.cur().kind != tokEOF {
		st, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, st)
		if !p.acceptOp(";") {
			break
		}
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after statements")
	}
	return out, nil
}

// MustParseStatement panics on error; intended for tests and examples.
func MustParseStatement(src string) history.Statement {
	st, err := ParseStatement(src)
	if err != nil {
		panic(err)
	}
	return st
}

// ParseCondition parses a standalone condition (Fig. 7 φ).
func ParseCondition(src string) (expr.Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after condition")
	}
	return e, nil
}

// MustParseCondition panics on error; intended for tests and examples.
func MustParseCondition(src string) expr.Expr {
	e, err := ParseCondition(src)
	if err != nil {
		panic(err)
	}
	return e
}

// ParseQuery parses a standalone SELECT query (used for INSERT…SELECT).
func ParseQuery(src string) (algebra.Query, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	p.acceptOp(";")
	if p.cur().kind != tokEOF {
		return nil, p.errf("trailing input after query")
	}
	return q, nil
}

func (p *parser) parseStatement() (history.Statement, error) {
	switch {
	case p.acceptKeyword("UPDATE"):
		return p.parseUpdate()
	case p.acceptKeyword("DELETE"):
		return p.parseDelete()
	case p.acceptKeyword("INSERT"):
		return p.parseInsert()
	}
	return nil, p.errf("expected UPDATE, DELETE, or INSERT, found %q", p.cur().text)
}

func (p *parser) parseUpdate() (history.Statement, error) {
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	var sets []history.SetClause
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sets = append(sets, history.SetClause{Col: col, E: e})
		if !p.acceptOp(",") {
			break
		}
	}
	where := expr.Expr(expr.True)
	if p.acceptKeyword("WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &history.Update{Rel: rel, Set: sets, Where: where}, nil
}

func (p *parser) parseDelete() (history.Statement, error) {
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	where := expr.Expr(expr.True)
	if p.acceptKeyword("WHERE") {
		if where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return &history.Delete{Rel: rel, Where: where}, nil
}

func (p *parser) parseInsert() (history.Statement, error) {
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("VALUES") {
		var rows []schema.Tuple
		for {
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			var row schema.Tuple
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c, ok := expr.Simplify(e).(*expr.Const)
				if !ok {
					return nil, p.errf("INSERT VALUES requires constant expressions, got %s", e)
				}
				row = append(row, c.V)
				if !p.acceptOp(",") {
					break
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			rows = append(rows, row)
			if !p.acceptOp(",") {
				break
			}
		}
		return &history.InsertValues{Rel: rel, Rows: rows}, nil
	}
	if p.cur().kind == tokKeyword && p.cur().text == "SELECT" {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &history.InsertQuery{Rel: rel, Query: q}, nil
	}
	// Parenthesized query — the rendering InsertQuery.String produces
	// ("INSERT INTO r (SELECT ...)"), accepted so statements round-trip
	// through the WAL. The grammar has no column lists, so "(" after
	// the relation name is unambiguous.
	if p.acceptOp("(") {
		q, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return &history.InsertQuery{Rel: rel, Query: q}, nil
	}
	return nil, p.errf("expected VALUES or SELECT after INSERT INTO %s", rel)
}

// parseSelect parses SELECT … [UNION [ALL] SELECT …].
func (p *parser) parseSelect() (algebra.Query, error) {
	q, err := p.parseSelectCore()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("UNION") {
		p.acceptKeyword("ALL") // bag semantics either way
		r, err := p.parseSelectCore()
		if err != nil {
			return nil, err
		}
		q = &algebra.Union{L: q, R: r}
	}
	return q, nil
}

// aggFuncs maps aggregate function names to algebra functions. They are
// matched case-insensitively as plain identifiers in select-item
// position (an identifier immediately followed by "("), not reserved as
// keywords, so columns named "count" or "min" stay valid everywhere.
var aggFuncs = map[string]algebra.AggFunc{
	"COUNT": algebra.AggCount, "SUM": algebra.AggSum, "AVG": algebra.AggAvg,
	"MIN": algebra.AggMin, "MAX": algebra.AggMax,
}

// peekAggFunc reports whether the cursor sits on an aggregate call head.
func (p *parser) peekAggFunc() (algebra.AggFunc, bool) {
	t := p.cur()
	if t.kind != tokIdent || p.pos+1 >= len(p.toks) {
		return 0, false
	}
	fn, ok := aggFuncs[strings.ToUpper(t.text)]
	if !ok {
		return 0, false
	}
	nt := p.toks[p.pos+1]
	return fn, nt.kind == tokOp && nt.text == "("
}

func (p *parser) parseSelectCore() (algebra.Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	type outCol struct {
		name string
		e    expr.Expr // non-aggregate item (nil when agg)
		agg  bool
		fn   algebra.AggFunc
		arg  expr.Expr // aggregate argument; nil for COUNT(*)
	}
	var cols []outCol
	star := false
	hasAgg := false
	if p.acceptOp("*") {
		star = true
	} else {
		for {
			var c outCol
			if fn, ok := p.peekAggFunc(); ok {
				p.next() // function name
				p.next() // "("
				c.agg, c.fn = true, fn
				hasAgg = true
				if !(fn == algebra.AggCount && p.acceptOp("*")) {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					c.arg = arg
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				c.e = e
			}
			if p.acceptKeyword("AS") {
				name, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				c.name = name
			} else if col, ok := c.e.(*expr.Col); ok {
				c.name = col.Name
			}
			cols = append(cols, c)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	from, err := p.parseFrom()
	if err != nil {
		return nil, err
	}
	var q algebra.Query = from
	if p.acceptKeyword("WHERE") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q = &algebra.Select{Cond: cond, In: q}
	}
	var groupExprs []expr.Expr
	hasGroupBy := false
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		hasGroupBy = true
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			groupExprs = append(groupExprs, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if !hasAgg && !hasGroupBy {
		if star {
			return q, nil
		}
		exprs := make([]algebra.NamedExpr, len(cols))
		for i, c := range cols {
			name := c.name
			if name == "" {
				name = "col" + strconv.Itoa(i+1)
			}
			exprs[i] = algebra.NamedExpr{Name: name, E: c.e}
		}
		return &algebra.Project{Exprs: exprs, In: q}, nil
	}
	// Aggregate query. The grammar keeps the γ node's column layout
	// directly expressible: grouping items first, aggregate items after
	// (so output columns are groups then aggregates), and the GROUP BY
	// list must name exactly the non-aggregate select items.
	if star {
		return nil, p.errf("SELECT * cannot be combined with aggregates or GROUP BY")
	}
	var groups []algebra.NamedExpr
	var aggs []algebra.AggExpr
	for i, c := range cols {
		name := c.name
		if name == "" {
			name = "col" + strconv.Itoa(i+1)
		}
		if c.agg {
			aggs = append(aggs, algebra.AggExpr{Name: name, Fn: c.fn, Arg: c.arg})
			continue
		}
		if len(aggs) > 0 {
			return nil, p.errf("grouping columns must precede aggregate columns in the select list")
		}
		groups = append(groups, algebra.NamedExpr{Name: name, E: c.e})
	}
	if !hasGroupBy && len(groups) > 0 {
		return nil, p.errf("non-aggregate select item %s requires a GROUP BY clause", groups[0].E)
	}
	if hasGroupBy {
		used := make([]bool, len(groupExprs))
		for _, g := range groups {
			found := false
			for j, ge := range groupExprs {
				if !used[j] && expr.Equal(g.E, ge) {
					used[j] = true
					found = true
					break
				}
			}
			if !found {
				return nil, p.errf("select item %s is not in the GROUP BY clause", g.E)
			}
		}
		for j, ge := range groupExprs {
			if used[j] {
				continue
			}
			dup := false
			for _, g := range groups {
				if expr.Equal(g.E, ge) {
					dup = true
					break
				}
			}
			if !dup {
				return nil, p.errf("GROUP BY expression %s does not appear in the select list", ge)
			}
		}
	}
	return &algebra.Aggregate{GroupBy: groups, Aggs: aggs, In: q}, nil
}

func (p *parser) parseFrom() (algebra.Query, error) {
	rel, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	var q algebra.Query = &algebra.Scan{Rel: rel}
	for p.acceptKeyword("JOIN") {
		right, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		q = &algebra.Join{L: q, R: &algebra.Scan{Rel: right}, Cond: cond}
	}
	return q, nil
}

// Expression grammar, loosest binding first: OR, AND, NOT, comparison
// (incl. IS NULL, BETWEEN, IN), additive, multiplicative, unary, primary.

func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Or{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &expr.And{L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		e, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: e}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[string]expr.CmpOp{
	"=": expr.CmpEq, "<>": expr.CmpNe, "!=": expr.CmpNe,
	"<": expr.CmpLt, "<=": expr.CmpLe, ">": expr.CmpGt, ">=": expr.CmpGe,
}

func (p *parser) parseComparison() (expr.Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokOp {
		if op, ok := cmpOps[p.cur().text]; ok {
			p.pos++
			r, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &expr.Cmp{Op: op, L: l, R: r}, nil
		}
	}
	if p.acceptKeyword("IS") {
		negated := p.acceptKeyword("NOT")
		if !p.acceptKeyword("NULL") {
			return nil, p.errf("expected NULL after IS")
		}
		var e expr.Expr = &expr.IsNull{E: l}
		if negated {
			e = &expr.Not{E: e}
		}
		return e, nil
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return expr.AndOf(expr.Ge(l, lo), expr.Le(l, hi)), nil
	}
	if p.acceptKeyword("IN") {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var alts []expr.Expr
		for {
			v, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			alts = append(alts, expr.Eq(l, v))
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return expr.OrOf(alts...), nil
	}
	return l, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("+"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.Add(l, r)
		case p.acceptOp("-"):
			r, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			l = expr.Sub(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptOp("*"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.Mul(l, r)
		case p.acceptOp("/"):
			r, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			l = expr.Div(l, r)
		default:
			return l, nil
		}
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if p.acceptOp("-") {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if c, ok := e.(*expr.Const); ok && c.V.IsNumeric() {
			if c.V.Kind() == types.KindInt {
				return expr.IntConst(-c.V.AsInt()), nil
			}
			return expr.FloatConst(-c.V.AsFloat()), nil
		}
		return expr.Sub(expr.IntConst(0), e), nil
	}
	if p.acceptOp("+") {
		return p.parseUnary()
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.FloatConst(f), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return expr.IntConst(i), nil
	case tokString:
		p.pos++
		return expr.StringConst(t.text), nil
	case tokParam:
		p.pos++
		return expr.Parameter(t.text), nil
	case tokIdent:
		p.pos++
		name := t.text
		// Qualified reference tab.col: schemas use unqualified names.
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			name = col
		}
		return expr.Column(name), nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.pos++
			return expr.True, nil
		case "FALSE":
			p.pos++
			return expr.False, nil
		case "NULL":
			p.pos++
			return expr.Constant(types.Null()), nil
		case "CASE":
			return p.parseCase()
		case "NOT":
			return p.parseNot()
		}
	case tokOp:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	}
	return nil, p.errf("unexpected token %q", t.text)
}

// parseCase parses CASE WHEN φ THEN e [WHEN …]* ELSE e END.
func (p *parser) parseCase() (expr.Expr, error) {
	if err := p.expectKeyword("CASE"); err != nil {
		return nil, err
	}
	type arm struct{ cond, then expr.Expr }
	var arms []arm
	for p.acceptKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		arms = append(arms, arm{cond, then})
	}
	if len(arms) == 0 {
		return nil, p.errf("CASE requires at least one WHEN arm")
	}
	if err := p.expectKeyword("ELSE"); err != nil {
		return nil, err
	}
	els, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	out := els
	for i := len(arms) - 1; i >= 0; i-- {
		out = expr.IfThenElse(arms[i].cond, arms[i].then, out)
	}
	return out, nil
}
