package sql

import (
	"math/rand"
	"testing"

	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/schema"
	"github.com/mahif/mahif/internal/types"
)

// randomRenderableCond builds a random condition over columns a/b/s
// using only constructs whose String() rendering is parseable SQL.
func randomRenderableCond(rng *rand.Rand, depth int) expr.Expr {
	if depth == 0 {
		switch rng.Intn(4) {
		case 0:
			return expr.Eq(expr.Column("s"), expr.StringConst([]string{"x", "y", "it's"}[rng.Intn(3)]))
		case 1:
			return &expr.IsNull{E: expr.Column("a")}
		default:
			ops := []expr.CmpOp{expr.CmpEq, expr.CmpNe, expr.CmpLt, expr.CmpLe, expr.CmpGt, expr.CmpGe}
			lhs := expr.Expr(expr.Column("a"))
			if rng.Intn(2) == 0 {
				lhs = expr.Add(lhs, expr.IntConst(int64(rng.Intn(5))))
			}
			return &expr.Cmp{Op: ops[rng.Intn(len(ops))], L: lhs, R: expr.IntConst(int64(rng.Intn(20) - 10))}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return &expr.And{L: randomRenderableCond(rng, depth-1), R: randomRenderableCond(rng, depth-1)}
	case 1:
		return &expr.Or{L: randomRenderableCond(rng, depth-1), R: randomRenderableCond(rng, depth-1)}
	case 2:
		return &expr.Not{E: randomRenderableCond(rng, depth-1)}
	default:
		return &expr.Cmp{
			Op: expr.CmpEq,
			L:  expr.Column("b"),
			R: expr.IfThenElse(randomRenderableCond(rng, depth-1),
				expr.IntConst(int64(rng.Intn(10))), expr.Column("b")),
		}
	}
}

// TestConditionRenderParseSemantics: rendering a condition and parsing
// it back must preserve evaluation over random tuples (the ASTs may
// differ structurally — e.g. <> vs NOT = — but not semantically).
func TestConditionRenderParseSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	s := schema.New("t",
		schema.Col("a", types.KindInt),
		schema.Col("b", types.KindInt),
		schema.Col("s", types.KindString),
	)
	strVals := []string{"x", "y", "it's", "other"}
	for trial := 0; trial < 400; trial++ {
		orig := randomRenderableCond(rng, 3)
		parsed, err := ParseCondition(orig.String())
		if err != nil {
			t.Fatalf("rendering not parseable: %s (%v)", orig.String(), err)
		}
		for probe := 0; probe < 10; probe++ {
			tup := schema.Tuple{
				types.Int(int64(rng.Intn(20) - 10)),
				types.Int(int64(rng.Intn(20) - 10)),
				types.String(strVals[rng.Intn(len(strVals))]),
			}
			env := expr.TupleEnv(s, tup)
			v1, err1 := expr.Eval(orig, env)
			v2, err2 := expr.Eval(parsed, env)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("error mismatch for %s on %s: %v vs %v", orig, tup, err1, err2)
			}
			if err1 == nil && !v1.Equal(v2) {
				t.Fatalf("semantics changed through render/parse:\n  %s = %v\n  %s = %v\n  tuple %s",
					orig, v1, parsed, v2, tup)
			}
		}
	}
}

// TestStatementRenderParseSemantics does the same for whole statements
// executed against a small database.
func TestStatementRenderParseSemantics(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 150; trial++ {
		cond := randomRenderableCond(rng, 2)
		var src string
		switch rng.Intn(3) {
		case 0:
			src = "UPDATE t SET b = b + 1 WHERE " + cond.String()
		case 1:
			src = "DELETE FROM t WHERE " + cond.String()
		default:
			src = "INSERT INTO t VALUES (1, 2, 'q')"
		}
		st1, err := ParseStatement(src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		st2, err := ParseStatement(st1.String())
		if err != nil {
			t.Fatalf("re-parse %q: %v", st1.String(), err)
		}
		if st1.String() != st2.String() {
			t.Fatalf("render/parse not stable:\n  %s\n  %s", st1, st2)
		}
	}
}
