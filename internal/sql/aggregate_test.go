package sql

import (
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
)

// TestAggregateRoundTrip pins the WAL-safety contract for aggregate
// queries: parse → render → parse is a fixed point, and the rendered
// SQL is what EncodeStatement would write to disk.
func TestAggregateRoundTrip(t *testing.T) {
	cases := []struct {
		src  string
		want string // rendered form ("" = same as src)
	}{
		{src: "SELECT COUNT(*) AS n FROM orders"},
		{src: "SELECT region, SUM(amount) AS total FROM orders WHERE amount > 10 GROUP BY region"},
		{src: "SELECT k, v, COUNT(v) AS c, AVG(v + 1) AS a FROM r GROUP BY v, k",
			want: "SELECT k, v, COUNT(v) AS c, AVG(v + 1) AS a FROM r GROUP BY k, v"},
		{src: "SELECT k + 1 AS kk, MIN(v) AS lo, MAX(v) AS hi FROM r GROUP BY k + 1"},
		{src: "SELECT g FROM r GROUP BY g"},
		{src: "SELECT count(v) FROM r", want: "SELECT COUNT(v) AS col1 FROM r"},
		{src: "SELECT g, MIN(v) AS lo FROM r JOIN s2 ON k = k2 GROUP BY g"},
	}
	for _, c := range cases {
		q, err := ParseQuery(c.src)
		if err != nil {
			t.Fatalf("parse %q: %v", c.src, err)
		}
		if _, ok := q.(*algebra.Aggregate); !ok {
			t.Fatalf("%q did not parse to an Aggregate node: %T", c.src, q)
		}
		out, err := RenderQuery(q)
		if err != nil {
			t.Fatalf("render %q: %v", c.src, err)
		}
		want := c.want
		if want == "" {
			want = c.src
		}
		if out != want {
			t.Fatalf("render %q: got %q want %q", c.src, out, want)
		}
		q2, err := ParseQuery(out)
		if err != nil {
			t.Fatalf("reparse %q: %v", out, err)
		}
		out2, err := RenderQuery(q2)
		if err != nil || out2 != out {
			t.Fatalf("round trip unstable: %q -> %q (err %v)", out, out2, err)
		}
	}
}

// TestAggregateStatementEncoding drives an aggregate INSERT…SELECT
// through the statement rendering used by the WAL codec
// (persist.EncodeStatement renders through RenderStatement).
func TestAggregateStatementEncoding(t *testing.T) {
	src := "INSERT INTO w SELECT g, COUNT(*) AS n FROM r GROUP BY g"
	st, err := ParseStatement(src)
	if err != nil {
		t.Fatal(err)
	}
	enc, err := RenderStatement(st)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(enc, "GROUP BY g") {
		t.Fatalf("encoded statement lost GROUP BY: %q", enc)
	}
	st2, err := ParseStatement(enc)
	if err != nil {
		t.Fatalf("reparse encoded statement %q: %v", enc, err)
	}
	enc2, err := RenderStatement(st2)
	if err != nil || enc2 != enc {
		t.Fatalf("statement round trip unstable: %q -> %q (err %v)", enc, enc2, err)
	}
}

// TestAggregateParseErrors pins the grammar restrictions that keep the
// γ node's layout (groups, then aggregates) directly renderable.
func TestAggregateParseErrors(t *testing.T) {
	bad := []string{
		"SELECT SUM(v) AS s, g FROM r GROUP BY g",    // aggregate before group col
		"SELECT g, SUM(v) AS s FROM r",               // non-aggregate item without GROUP BY
		"SELECT g, SUM(v) AS s FROM r GROUP BY k",    // select item not in GROUP BY
		"SELECT g, SUM(v) AS s FROM r GROUP BY g, k", // GROUP BY expr not in select list
		"SELECT * FROM r GROUP BY g",                 // star with GROUP BY
		"SELECT SUM(*) AS s FROM r",                  // * only valid in COUNT
	}
	for _, src := range bad {
		if _, err := ParseQuery(src); err == nil {
			t.Fatalf("expected parse error for %q", src)
		}
	}
	// Identifiers named like aggregate functions stay usable when not
	// followed by "(".
	if _, err := ParseQuery("SELECT count FROM r WHERE count > 3"); err != nil {
		t.Fatalf("column named count: %v", err)
	}
}
