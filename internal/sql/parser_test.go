package sql

import (
	"strings"
	"testing"

	"github.com/mahif/mahif/internal/algebra"
	"github.com/mahif/mahif/internal/expr"
	"github.com/mahif/mahif/internal/history"
	"github.com/mahif/mahif/internal/types"
)

func TestParseUpdate(t *testing.T) {
	st, err := ParseStatement(`UPDATE orders SET fee = 0, total = price + fee WHERE price >= 50 AND country = 'UK'`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := st.(*history.Update)
	if !ok {
		t.Fatalf("got %T", st)
	}
	if u.Rel != "orders" || len(u.Set) != 2 {
		t.Errorf("update = %s", u)
	}
	if u.Set[0].Col != "fee" || !expr.Equal(u.Set[0].E, expr.IntConst(0)) {
		t.Errorf("first set clause = %v", u.Set[0])
	}
	wantWhere := expr.AndOf(
		expr.Ge(expr.Column("price"), expr.IntConst(50)),
		expr.Eq(expr.Column("country"), expr.StringConst("UK")),
	)
	if !expr.Equal(u.Where, wantWhere) {
		t.Errorf("where = %s, want %s", u.Where, wantWhere)
	}
}

func TestParseUpdateNoWhere(t *testing.T) {
	st := MustParseStatement(`UPDATE t SET a = a + 1`)
	u := st.(*history.Update)
	if !expr.IsTriviallyTrue(u.Where) {
		t.Errorf("missing WHERE must default to true, got %s", u.Where)
	}
}

func TestParseDelete(t *testing.T) {
	st := MustParseStatement(`DELETE FROM t WHERE a < 3`)
	d := st.(*history.Delete)
	if d.Rel != "t" || !expr.Equal(d.Where, expr.Lt(expr.Column("a"), expr.IntConst(3))) {
		t.Errorf("delete = %s", d)
	}
}

func TestParseInsertValues(t *testing.T) {
	st := MustParseStatement(`INSERT INTO t VALUES (1, 'x', 2.5, true, NULL), (2, 'y', 0.5, false, 7)`)
	iv := st.(*history.InsertValues)
	if len(iv.Rows) != 2 || len(iv.Rows[0]) != 5 {
		t.Fatalf("rows = %v", iv.Rows)
	}
	row := iv.Rows[0]
	if row[0].AsInt() != 1 || row[1].AsString() != "x" || row[2].AsFloat() != 2.5 ||
		!row[3].AsBool() || !row[4].IsNull() {
		t.Errorf("row = %s", row)
	}
}

func TestParseInsertNegativeNumbers(t *testing.T) {
	st := MustParseStatement(`INSERT INTO t VALUES (-3, -2.5)`)
	iv := st.(*history.InsertValues)
	if iv.Rows[0][0].AsInt() != -3 || iv.Rows[0][1].AsFloat() != -2.5 {
		t.Errorf("row = %s", iv.Rows[0])
	}
}

func TestParseInsertFoldsConstants(t *testing.T) {
	st := MustParseStatement(`INSERT INTO t VALUES (2 + 3 * 4)`)
	iv := st.(*history.InsertValues)
	if iv.Rows[0][0].AsInt() != 14 {
		t.Errorf("folded value = %v", iv.Rows[0][0])
	}
}

func TestParseInsertSelect(t *testing.T) {
	st := MustParseStatement(`INSERT INTO archive SELECT id, price FROM orders WHERE price > 100`)
	iq := st.(*history.InsertQuery)
	if iq.Rel != "archive" {
		t.Errorf("rel = %s", iq.Rel)
	}
	p, ok := iq.Query.(*algebra.Project)
	if !ok {
		t.Fatalf("query = %T (%s)", iq.Query, iq.Query)
	}
	if len(p.Exprs) != 2 || p.Exprs[0].Name != "id" {
		t.Errorf("projection = %s", p)
	}
	if _, ok := p.In.(*algebra.Select); !ok {
		t.Errorf("expected selection below projection, got %s", p.In)
	}
}

func TestParseInsertSelectStar(t *testing.T) {
	st := MustParseStatement(`INSERT INTO archive SELECT * FROM orders WHERE price > 100`)
	iq := st.(*history.InsertQuery)
	if _, ok := iq.Query.(*algebra.Select); !ok {
		t.Errorf("SELECT * must not project, got %s", iq.Query)
	}
}

func TestParseSelectJoinUnion(t *testing.T) {
	q, err := ParseQuery(`SELECT a, c AS renamed FROM r JOIN s ON a = c WHERE b > 1 UNION SELECT a, b FROM t2`)
	if err != nil {
		t.Fatal(err)
	}
	u, ok := q.(*algebra.Union)
	if !ok {
		t.Fatalf("got %T", q)
	}
	left := u.L.(*algebra.Project)
	if left.Exprs[1].Name != "renamed" {
		t.Errorf("AS alias lost: %v", left.Exprs[1])
	}
	sel := left.In.(*algebra.Select)
	if _, ok := sel.In.(*algebra.Join); !ok {
		t.Errorf("expected join, got %s", sel.In)
	}
}

func TestParseStatements(t *testing.T) {
	h, err := ParseStatements(`
		UPDATE t SET a = 1 WHERE b = 2;
		-- a comment
		DELETE FROM t WHERE a = 1;
		INSERT INTO t VALUES (1, 2);
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(h) != 3 {
		t.Fatalf("parsed %d statements", len(h))
	}
}

func TestParseConditionPrecedence(t *testing.T) {
	// a = 1 OR b = 2 AND c = 3  ≡  a = 1 OR (b = 2 AND c = 3)
	e := MustParseCondition(`a = 1 OR b = 2 AND c = 3`)
	or, ok := e.(*expr.Or)
	if !ok {
		t.Fatalf("top = %T", e)
	}
	if _, ok := or.R.(*expr.And); !ok {
		t.Errorf("AND must bind tighter than OR: %s", e)
	}
	// 1 + 2 * 3 = 7
	e = MustParseCondition(`x = 1 + 2 * 3`)
	cmp := e.(*expr.Cmp)
	if !expr.Equal(expr.Simplify(cmp.R), expr.IntConst(7)) {
		t.Errorf("arith precedence: %s", cmp.R)
	}
}

func TestParseConditionConstructs(t *testing.T) {
	cases := []struct {
		src  string
		want expr.Expr
	}{
		{`a BETWEEN 1 AND 5`, expr.AndOf(
			expr.Ge(expr.Column("a"), expr.IntConst(1)),
			expr.Le(expr.Column("a"), expr.IntConst(5)))},
		{`a IN (1, 2)`, expr.OrOf(
			expr.Eq(expr.Column("a"), expr.IntConst(1)),
			expr.Eq(expr.Column("a"), expr.IntConst(2)))},
		{`a IS NULL`, &expr.IsNull{E: expr.Column("a")}},
		{`a IS NOT NULL`, &expr.Not{E: &expr.IsNull{E: expr.Column("a")}}},
		{`NOT a = 1`, &expr.Not{E: expr.Eq(expr.Column("a"), expr.IntConst(1))}},
		{`a <> 1`, expr.Ne(expr.Column("a"), expr.IntConst(1))},
		{`a != 1`, expr.Ne(expr.Column("a"), expr.IntConst(1))},
		{`tab.col = 1`, expr.Eq(expr.Column("col"), expr.IntConst(1))},
	}
	for _, c := range cases {
		got, err := ParseCondition(c.src)
		if err != nil {
			t.Errorf("%s: %v", c.src, err)
			continue
		}
		if !expr.Equal(got, c.want) {
			t.Errorf("ParseCondition(%q) = %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseCase(t *testing.T) {
	e := MustParseCondition(`x = CASE WHEN a >= 50 THEN 0 WHEN a >= 20 THEN 1 ELSE 2 END`)
	cmp := e.(*expr.Cmp)
	outer, ok := cmp.R.(*expr.If)
	if !ok {
		t.Fatalf("got %T", cmp.R)
	}
	if _, ok := outer.Else.(*expr.If); !ok {
		t.Errorf("nested WHEN arms must chain into else: %s", outer)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e := MustParseCondition(`s = 'it''s'`)
	cmp := e.(*expr.Cmp)
	c := cmp.R.(*expr.Const)
	if c.V.AsString() != "it's" {
		t.Errorf("escaped string = %q", c.V.AsString())
	}
}

func TestParseQuotedIdentifier(t *testing.T) {
	st := MustParseStatement(`UPDATE "my table" SET "the col" = 1`)
	u := st.(*history.Update)
	if u.Rel != "my table" || u.Set[0].Col != "the col" {
		t.Errorf("quoted identifiers: %s / %s", u.Rel, u.Set[0].Col)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT a FROM t`,                    // bare SELECT is not a statement
		`UPDATE t SET`,                       // missing assignment
		`UPDATE t SET a = WHERE b = 1`,       // missing expression
		`DELETE t WHERE a = 1`,               // missing FROM
		`INSERT INTO t VALUES (a)`,           // non-constant value
		`INSERT INTO t`,                      // missing VALUES/SELECT
		`UPDATE t SET a = 1 WHERE a = 'open`, // unterminated string
		`UPDATE t SET a = 1 extra`,           // trailing garbage
		`UPDATE t SET a = CASE WHEN 1=1 THEN 2 END`, // CASE without ELSE
		`UPDATE t SET a = 1 WHERE a ~ 2`,            // unknown operator
	}
	for _, src := range cases {
		if _, err := ParseStatement(src); err == nil {
			t.Errorf("ParseStatement(%q): expected error", src)
		}
	}
}

func TestParseErrorMentionsOffset(t *testing.T) {
	_, err := ParseStatement(`UPDATE t SET a = WHERE`)
	if err == nil || !strings.Contains(err.Error(), "offset") {
		t.Errorf("error should carry an offset: %v", err)
	}
}

func TestRoundTripThroughString(t *testing.T) {
	// Statement → String() → parse again → same structure.
	srcs := []string{
		`UPDATE orders SET fee = 0 WHERE price >= 50`,
		`DELETE FROM orders WHERE price < 10 AND country = 'US'`,
		`INSERT INTO t VALUES (1, 'a')`,
	}
	for _, src := range srcs {
		st1 := MustParseStatement(src)
		st2, err := ParseStatement(st1.String())
		if err != nil {
			t.Errorf("re-parsing %q: %v", st1.String(), err)
			continue
		}
		if st1.String() != st2.String() {
			t.Errorf("round trip changed statement:\n  %s\n  %s", st1, st2)
		}
	}
}

func TestLexerNumberForms(t *testing.T) {
	e := MustParseCondition(`x = .5`)
	c := e.(*expr.Cmp).R.(*expr.Const)
	if c.V.Kind() != types.KindFloat || c.V.AsFloat() != 0.5 {
		t.Errorf(".5 parsed as %v", c.V)
	}
}
