// Package sql is a hand-written lexer and recursive-descent parser for
// the SQL statement subset the paper supports (§2): UPDATE and DELETE
// without joins or nested subqueries, INSERT … VALUES, and
// INSERT … SELECT with select-project-join-union queries, plus the full
// expression grammar of Fig. 7 (arithmetic, comparisons, boolean
// connectives, CASE WHEN, IS NULL).
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokKeyword
	tokNumber
	tokString
	tokParam // $name template parameter slot
	tokOp    // operators and punctuation
)

type token struct {
	kind tokenKind
	text string
	pos  int // byte offset, for error messages
}

// keywords recognized by the parser (upper-cased).
var keywords = map[string]bool{
	"UPDATE": true, "SET": true, "WHERE": true, "DELETE": true, "FROM": true,
	"INSERT": true, "INTO": true, "VALUES": true, "SELECT": true, "AS": true,
	"JOIN": true, "ON": true, "UNION": true, "AND": true, "OR": true,
	"NOT": true, "TRUE": true, "FALSE": true, "NULL": true, "IS": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"ALL": true, "BETWEEN": true, "IN": true, "GROUP": true, "BY": true,
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes the whole input up front; SQL statements are short.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			l.lexWord()
		case unicode.IsDigit(rune(c)) || (c == '.' && l.pos+1 < len(l.src) && unicode.IsDigit(rune(l.src[l.pos+1]))):
			if err := l.lexNumber(); err != nil {
				return nil, err
			}
		case c == '\'':
			if err := l.lexString(); err != nil {
				return nil, err
			}
		case c == '$':
			if err := l.lexParam(); err != nil {
				return nil, err
			}
		default:
			if err := l.lexOp(); err != nil {
				return nil, err
			}
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		// Line comments: -- to end of line.
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		return
	}
}

func isIdentStart(r rune) bool {
	return unicode.IsLetter(r) || r == '_' || r == '"'
}

func (l *lexer) lexWord() {
	start := l.pos
	if l.src[l.pos] == '"' {
		// Quoted identifier.
		l.pos++
		for l.pos < len(l.src) && l.src[l.pos] != '"' {
			l.pos++
		}
		text := l.src[start+1 : l.pos]
		if l.pos < len(l.src) {
			l.pos++
		}
		l.emit(token{kind: tokIdent, text: text, pos: start})
		return
	}
	for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	text := l.src[start:l.pos]
	if keywords[strings.ToUpper(text)] {
		l.emit(token{kind: tokKeyword, text: strings.ToUpper(text), pos: start})
		return
	}
	l.emit(token{kind: tokIdent, text: text, pos: start})
}

func (l *lexer) lexNumber() error {
	start := l.pos
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if unicode.IsDigit(rune(c)) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	// Exponent suffix (1e30, 2.5E-7, 1e+300): only when digits follow,
	// so an identifier hugging a number ("25e") is left to the word
	// lexer. Floats render through strconv 'g', which uses this form
	// for very large and very small magnitudes.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		p := l.pos + 1
		if p < len(l.src) && (l.src[p] == '+' || l.src[p] == '-') {
			p++
		}
		if p < len(l.src) && unicode.IsDigit(rune(l.src[p])) {
			l.pos = p
			for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
				l.pos++
			}
		}
	}
	l.emit(token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
	return nil
}

func (l *lexer) lexString() error {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			// '' escapes a quote.
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				b.WriteByte('\'')
				l.pos += 2
				continue
			}
			l.pos++
			l.emit(token{kind: tokString, text: b.String(), pos: start})
			return nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return fmt.Errorf("sql: unterminated string literal at offset %d", start)
}

// lexParam consumes $name — a scenario-template parameter slot. The
// name follows identifier rules (letter/underscore start).
func (l *lexer) lexParam() error {
	start := l.pos
	l.pos++ // '$'
	if l.pos >= len(l.src) || !(unicode.IsLetter(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		return fmt.Errorf("sql: expected parameter name after $ at offset %d", start)
	}
	for l.pos < len(l.src) && (unicode.IsLetter(rune(l.src[l.pos])) || unicode.IsDigit(rune(l.src[l.pos])) || l.src[l.pos] == '_') {
		l.pos++
	}
	l.emit(token{kind: tokParam, text: l.src[start+1 : l.pos], pos: start})
	return nil
}

var twoCharOps = map[string]bool{"<=": true, ">=": true, "<>": true, "!=": true}

func (l *lexer) lexOp() error {
	start := l.pos
	if l.pos+1 < len(l.src) && twoCharOps[l.src[l.pos:l.pos+2]] {
		l.emit(token{kind: tokOp, text: l.src[l.pos : l.pos+2], pos: start})
		l.pos += 2
		return nil
	}
	switch c := l.src[l.pos]; c {
	case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', ';', '.':
		l.emit(token{kind: tokOp, text: string(c), pos: start})
		l.pos++
		return nil
	}
	return fmt.Errorf("sql: unexpected character %q at offset %d", l.src[l.pos], start)
}
