// Command batch demonstrates batch what-if evaluation: an analyst
// sweeping a family of hypothetical shipping-fee thresholds over the
// retailer history of the paper's running example, answered in one
// WhatIfBatch call. The scenarios share their history prefix, so the
// engine materializes the time-travel state once and reuses solver
// outcomes and reenactment results across the family.
package main

import (
	"fmt"
	"log"

	"github.com/mahif/mahif"
)

func main() {
	s := mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("customer", mahif.KindString),
		mahif.Col("country", mahif.KindString),
		mahif.Col("price", mahif.KindInt),
		mahif.Col("shippingfee", mahif.KindInt),
	)
	orders := mahif.NewRelation(s)
	orders.Add(
		mahif.NewTuple(mahif.Int(11), mahif.Str("Susan"), mahif.Str("UK"), mahif.Int(20), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(12), mahif.Str("Alex"), mahif.Str("UK"), mahif.Int(50), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(13), mahif.Str("Jack"), mahif.Str("US"), mahif.Int(60), mahif.Int(3)),
		mahif.NewTuple(mahif.Int(14), mahif.Str("Mark"), mahif.Str("US"), mahif.Int(30), mahif.Int(4)),
	)
	db := mahif.NewDatabase()
	db.AddRelation(orders)

	vdb := mahif.NewVersioned(db)
	for _, src := range []string{
		`UPDATE orders SET shippingfee = 0 WHERE price >= 50`,
		`UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100`,
		`UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10`,
	} {
		if err := vdb.Apply(mahif.MustParseStatement(src)); err != nil {
			log.Fatal(err)
		}
	}

	// The scenario family: "what if the fee-waiving threshold had been
	// X?" for a sweep of X, plus one structural hypothetical that drops
	// the UK surcharge entirely.
	var scenarios []mahif.Scenario
	for _, threshold := range []int{40, 55, 60, 70} {
		scenarios = append(scenarios, mahif.Scenario{
			Label: fmt.Sprintf("threshold-%d", threshold),
			Mods: []mahif.Modification{mahif.ReplaceSQL(0, fmt.Sprintf(
				`UPDATE orders SET shippingfee = 0 WHERE price >= %d`, threshold))},
		})
	}
	scenarios = append(scenarios, mahif.Scenario{
		Label: "no-uk-surcharge",
		Mods:  []mahif.Modification{mahif.DeleteAt(1)},
	})

	engine := mahif.NewEngine(vdb)
	results, stats, err := engine.WhatIfBatch(scenarios, mahif.BatchOptions{
		Options: mahif.DefaultOptions(),
	})
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range results {
		fmt.Printf("== %s ==\n", r.Label)
		if r.Err != nil {
			fmt.Println("error:", r.Err)
			continue
		}
		if r.Delta.Empty() {
			fmt.Println("(no difference)")
			continue
		}
		fmt.Print(r.Delta)
	}
	fmt.Printf("batch: %d scenarios, %d workers, %v total; snapshot reuse %d/%d, solver memo %d/%d\n",
		stats.Scenarios, stats.Workers, stats.Total,
		stats.SnapshotHits, stats.SnapshotHits+stats.SnapshotMisses,
		stats.MemoHits, stats.MemoHits+stats.MemoMisses)
}
