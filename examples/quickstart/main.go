// Command quickstart walks through the paper's running example
// (Example 1–2): an online retailer's shipping-fee policy implemented
// as a three-update transactional history, and the historical what-if
// query "what if the threshold for waiving shipping fees had been $60
// instead of $50?".
package main

import (
	"fmt"
	"log"

	"github.com/mahif/mahif"
)

func main() {
	// The Order relation as of before the policy ran (Fig. 1).
	s := mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("customer", mahif.KindString),
		mahif.Col("country", mahif.KindString),
		mahif.Col("price", mahif.KindInt),
		mahif.Col("shippingfee", mahif.KindInt),
	)
	orders := mahif.NewRelation(s)
	orders.Add(
		mahif.NewTuple(mahif.Int(11), mahif.Str("Susan"), mahif.Str("UK"), mahif.Int(20), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(12), mahif.Str("Alex"), mahif.Str("UK"), mahif.Int(50), mahif.Int(5)),
		mahif.NewTuple(mahif.Int(13), mahif.Str("Jack"), mahif.Str("US"), mahif.Int(60), mahif.Int(3)),
		mahif.NewTuple(mahif.Int(14), mahif.Str("Mark"), mahif.Str("US"), mahif.Int(30), mahif.Int(4)),
	)
	db := mahif.NewDatabase()
	db.AddRelation(orders)

	// Track history with time travel and execute the policy (Fig. 2).
	vdb := mahif.NewVersioned(db)
	historySQL := []string{
		`UPDATE orders SET shippingfee = 0 WHERE price >= 50`,
		`UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100`,
		`UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10`,
	}
	for _, stmt := range historySQL {
		if err := vdb.Apply(mahif.MustParseStatement(stmt)); err != nil {
			log.Fatalf("applying %q: %v", stmt, err)
		}
	}
	fmt.Println("Current database state (Fig. 3):")
	fmt.Print(vdb.Current())

	// Bob's historical what-if query: replace u1 with u1' (Fig. 2, red).
	engine := mahif.NewEngine(vdb)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE orders SET shippingfee = 0 WHERE price >= 60`),
	}
	delta, stats, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		log.Fatalf("what-if: %v", err)
	}
	fmt.Println("\nAnswer to the what-if query (Example 2):")
	fmt.Print(delta)
	fmt.Printf("\nphases: time-travel=%v slicing=%v+%v execute=%v delta=%v\n",
		stats.TimeTravel, stats.ProgramSlicing, stats.DataSlicing, stats.Execute, stats.Delta)
	fmt.Printf("statements reenacted: %d of %d\n", stats.KeptStatements, stats.TotalStatements)
}
