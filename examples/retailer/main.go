// Command retailer scales the paper's motivating scenario up: an
// online retailer ran a sequence of pricing-policy updates over 50,000
// orders and wants to know how revenue would differ under a stricter
// free-shipping threshold — the actionable kind of insight §1 argues
// historical what-if queries enable. The example compares the naive
// algorithm against full Mahif and derives the revenue answer from the
// delta.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/mahif/mahif"
)

const numOrders = 50000

func buildOrders() *mahif.Relation {
	s := mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("country", mahif.KindString),
		mahif.Col("price", mahif.KindInt),
		mahif.Col("shippingfee", mahif.KindInt),
	)
	countries := []string{"UK", "US", "DE", "FR", "JP"}
	r := rand.New(rand.NewSource(42))
	rel := mahif.NewRelation(s)
	for i := 0; i < numOrders; i++ {
		rel.Add(mahif.NewTuple(
			mahif.Int(int64(i)),
			mahif.Str(countries[r.Intn(len(countries))]),
			mahif.Int(int64(r.Intn(200))), // price 0..199
			mahif.Int(int64(3+r.Intn(8))), // base fee 3..10
		))
	}
	return rel
}

func main() {
	db := mahif.NewDatabase()
	db.AddRelation(buildOrders())
	vdb := mahif.NewVersioned(db)

	// The shipping-fee policy history.
	policy := []string{
		`UPDATE orders SET shippingfee = 0 WHERE price >= 50`,
		`UPDATE orders SET shippingfee = shippingfee + 5 WHERE country = 'UK' AND price <= 100`,
		`UPDATE orders SET shippingfee = shippingfee - 2 WHERE price <= 30 AND shippingfee >= 10`,
		`UPDATE orders SET shippingfee = shippingfee + 1 WHERE country = 'JP' AND price < 50`,
		`UPDATE orders SET shippingfee = shippingfee - 1 WHERE country = 'DE' AND price < 20`,
	}
	for _, stmt := range policy {
		if err := vdb.Apply(mahif.MustParseStatement(stmt)); err != nil {
			log.Fatal(err)
		}
	}

	// What if free shipping had required $80 instead of $50?
	engine := mahif.NewEngine(vdb)
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE orders SET shippingfee = 0 WHERE price >= 80`),
	}

	naive, naiveStats, err := engine.Naive(mods)
	if err != nil {
		log.Fatal(err)
	}
	fast, stats, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	if !naive["orders"].Equal(fast["orders"]) {
		log.Fatal("naive and Mahif disagree — this is a bug")
	}

	// Revenue impact: fee revenue gained under the hypothetical policy.
	feeIdx := 3
	var gained int64
	for _, t := range fast["orders"].Plus {
		gained += t[feeIdx].AsInt()
	}
	for _, t := range fast["orders"].Minus {
		gained -= t[feeIdx].AsInt()
	}
	fmt.Printf("orders whose fee would change: %d\n", len(fast["orders"].Plus))
	fmt.Printf("additional shipping-fee revenue under $80 threshold: $%d\n", gained)
	fmt.Printf("\nnaive:  total=%v (copy=%v execute=%v delta=%v)\n",
		naiveStats.Total, naiveStats.Creation, naiveStats.Execute, naiveStats.Delta)
	fmt.Printf("mahif:  total=%v (slicing=%v execute=%v delta=%v, reenacted %d/%d statements)\n",
		stats.Total, stats.ProgramSlicing+stats.DataSlicing, stats.Execute, stats.Delta,
		stats.KeptStatements, stats.TotalStatements)
}
