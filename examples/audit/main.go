// Command audit uses historical what-if queries forensically: an
// inventory table (TPC-C stock) went through a batch of correction
// scripts, and an auditor wants to attribute the current discrepancies
// to individual corrections. For each correction the auditor asks
// "what if this script had not run?" — a statement-deletion
// modification — and ranks the scripts by how many rows their absence
// would change. Program slicing makes each probe cheap because most
// scripts are provably irrelevant to each other.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/workload"
)

func main() {
	ds := workload.TPCC(20000, 11)
	vdb := mahif.NewVersioned(ds.Database())

	corrections := []string{
		`UPDATE stock SET s_order_cnt = s_order_cnt + 1 WHERE s_quantity >= 9000`,
		`UPDATE stock SET s_remote_cnt = 0 WHERE s_quantity < 100`,
		`UPDATE stock SET s_ytd = s_ytd + 50 WHERE s_quantity >= 9500`,
		`UPDATE stock SET s_order_cnt = 0 WHERE s_ytd < 200`,
		`DELETE FROM stock WHERE s_quantity < 10 AND s_ytd < 10`,
		`UPDATE stock SET s_remote_cnt = s_remote_cnt + 1 WHERE s_ytd >= 9900`,
	}
	for _, stmt := range corrections {
		if err := vdb.Apply(mahif.MustParseStatement(stmt)); err != nil {
			log.Fatal(err)
		}
	}

	engine := mahif.NewEngine(vdb)
	type impact struct {
		pos   int
		rows  int
		sql   string
		spent string
	}
	var impacts []impact
	for pos, sql := range corrections {
		delta, stats, err := engine.WhatIf(
			[]mahif.Modification{mahif.DeleteAt(pos)}, mahif.DefaultOptions())
		if err != nil {
			log.Fatalf("probing correction %d: %v", pos+1, err)
		}
		impacts = append(impacts, impact{
			pos:   pos + 1,
			rows:  delta["stock"].Size() / 2,
			sql:   sql,
			spent: fmt.Sprintf("%v (reenacted %d/%d)", stats.Total, stats.KeptStatements, stats.TotalStatements),
		})
	}
	sort.Slice(impacts, func(i, j int) bool { return impacts[i].rows > impacts[j].rows })

	fmt.Println("corrections ranked by rows the current state owes them:")
	for _, im := range impacts {
		fmt.Printf("  #%d  %6d rows  %-70s  %s\n", im.pos, im.rows, im.sql, im.spent)
	}
}
