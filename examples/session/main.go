// Example session: an analyst iterating a family of hypothetical fee
// thresholds over one history through a long-lived Session, showing
// the cross-call cache reuse and a cancelled query.
package main

import (
	"context"
	"errors"
	"fmt"
	"time"

	"github.com/mahif/mahif"
)

func main() {
	// Orders relation + two-statement fee history.
	rel := mahif.NewRelation(mahif.NewSchema("orders",
		mahif.Col("id", mahif.KindInt),
		mahif.Col("price", mahif.KindFloat),
		mahif.Col("fee", mahif.KindFloat),
	))
	for i := 0; i < 1000; i++ {
		rel.Add(mahif.NewTuple(mahif.Int(int64(i)), mahif.Float(float64(20+i%80)), mahif.Float(5)))
	}
	db := mahif.NewDatabase()
	db.AddRelation(rel)
	vdb := mahif.NewVersioned(db)
	for _, src := range []string{
		`UPDATE orders SET fee = 0 WHERE price >= 50`,
		`UPDATE orders SET fee = fee + 1 WHERE price < 40`,
	} {
		if err := vdb.Apply(mahif.MustParseStatement(src)); err != nil {
			panic(err)
		}
	}
	engine := mahif.NewEngine(vdb)

	// One session, many related hypotheticals: the time-travel
	// snapshot and compiled reenactment programs are built once.
	sess := engine.NewSession()
	ctx := context.Background()
	for _, threshold := range []int{55, 56, 57, 58} {
		mods := []mahif.Modification{mahif.ReplaceSQL(0,
			fmt.Sprintf(`UPDATE orders SET fee = 0 WHERE price >= %d`, threshold))}
		delta, _, err := sess.WhatIfCtx(ctx, mods, mahif.DefaultOptions())
		if err != nil {
			panic(err)
		}
		fmt.Printf("threshold %d: %d tuples differ\n", threshold, delta.Size())
	}
	st := sess.Stats()
	fmt.Printf("session: %d calls, snapshot hits/misses %d/%d, query hits/misses %d/%d\n",
		st.Calls, st.SnapshotHits, st.SnapshotMisses, st.QueryHits, st.QueryMisses)

	// Deadlines cancel deep inside the engine: an impossible budget
	// returns context.DeadlineExceeded instead of burning CPU.
	tight, cancel := context.WithTimeout(ctx, time.Nanosecond)
	defer cancel()
	_, _, err := sess.WhatIfCtx(tight, []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE orders SET fee = 0 WHERE price >= 99`),
	}, mahif.DefaultOptions())
	fmt.Printf("1ns budget: err=%v (deadline=%v)\n", err, errors.Is(err, context.DeadlineExceeded))
}
