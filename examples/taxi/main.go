// Command taxi answers a historical what-if query over the taxi-trips
// workload of the paper's evaluation (§13.1): a regulator applied a
// sequence of fare adjustments; the analyst asks how the books would
// look had the low-income-area surcharge waiver used a different
// trip-length cutoff. The example demonstrates multi-statement
// histories over the taxi schema, the statement-insertion modification
// kind, and reading per-phase statistics.
package main

import (
	"fmt"
	"log"

	"github.com/mahif/mahif"
	"github.com/mahif/mahif/internal/workload"
)

func main() {
	// 20k synthetic trips with the Chicago-taxi schema.
	ds := workload.Taxi(20000, 7)
	db := ds.Database()
	vdb := mahif.NewVersioned(db)

	adjustments := []string{
		// Surcharge waiver for short trips.
		`UPDATE trips SET extras = 0 WHERE trip_seconds < 300`,
		// Airport toll pass-through.
		`UPDATE trips SET tolls = tolls + 2.5 WHERE pickup_area = 76`,
		// Fuel surcharge on long trips.
		`UPDATE trips SET extras = extras + 1.5 WHERE trip_miles >= 8000`,
		// Recompute totals for the adjusted trips.
		`UPDATE trips SET trip_total = fare + tips + tolls + extras WHERE trip_seconds < 300 OR pickup_area = 76 OR trip_miles >= 8000`,
	}
	for _, stmt := range adjustments {
		if err := vdb.Apply(mahif.MustParseStatement(stmt)); err != nil {
			log.Fatal(err)
		}
	}

	engine := mahif.NewEngine(vdb)

	// Scenario 1: a different waiver cutoff (10 minutes instead of 5).
	mods := []mahif.Modification{
		mahif.ReplaceSQL(0, `UPDATE trips SET extras = 0 WHERE trip_seconds < 600`),
	}
	delta, stats, err := engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario 1 (wider waiver): %d trips would differ\n", delta["trips"].Size()/2)
	fmt.Printf("  reenacted %d/%d statements, total %v (PS %v, DS %v, exec %v)\n",
		stats.KeptStatements, stats.TotalStatements,
		stats.Total, stats.ProgramSlicing, stats.DataSlicing, stats.Execute)

	// Scenario 2: what if an extra rebate statement had been run after
	// the toll pass-through?
	mods = []mahif.Modification{
		mahif.InsertSQL(2, `UPDATE trips SET tips = tips + 1 WHERE pickup_area = 76`),
	}
	delta, stats, err = engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario 2 (inserted rebate): %d trips would differ\n", delta["trips"].Size()/2)
	fmt.Printf("  reenacted %d/%d statements, total %v\n",
		stats.KeptStatements, stats.TotalStatements, stats.Total)

	// Scenario 3: what if the fuel surcharge had never happened?
	mods = []mahif.Modification{mahif.DeleteAt(2)}
	delta, stats, err = engine.WhatIf(mods, mahif.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario 3 (no fuel surcharge): %d trips would differ\n", delta["trips"].Size()/2)
	fmt.Printf("  reenacted %d/%d statements, total %v\n",
		stats.KeptStatements, stats.TotalStatements, stats.Total)
}
