// Benchmarks regenerating the paper's evaluation (§13) at reduced
// scale — one testing.B benchmark per table/figure, mirroring the
// cmd/mahif-bench harness (which runs the full sweeps). Shapes to look
// for are documented per benchmark and in EXPERIMENTS.md.
package mahif_test

import (
	"fmt"
	"testing"

	"github.com/mahif/mahif/internal/core"
	"github.com/mahif/mahif/internal/symbolic"
	"github.com/mahif/mahif/internal/workload"
)

// benchRows keeps the testing.B versions quick; cmd/mahif-bench scales
// higher.
const benchRows = 8000

func benchDataset(b *testing.B, name string, rows int) *workload.Dataset {
	b.Helper()
	ds, err := workload.ByName(name, rows, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ds
}

func benchWorkload(b *testing.B, ds *workload.Dataset, cfg workload.Config) *workload.Workload {
	b.Helper()
	if cfg.DependentPct == 0 {
		cfg.DependentPct = 10
	}
	if cfg.AffectedPct == 0 {
		cfg.AffectedPct = 10
	}
	cfg.Seed = 1
	w, err := workload.Generate(ds, cfg)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// runVariant measures answering the query once per iteration; loading
// the history (setup) happens outside the timer.
func runVariant(b *testing.B, w *workload.Workload, v core.Variant) {
	b.Helper()
	vdb, err := w.Load()
	if err != nil {
		b.Fatal(err)
	}
	engine := core.New(vdb)
	opts := core.OptionsFor(v)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v == core.VariantNaive {
			if _, _, err := engine.Naive(w.Mods); err != nil {
				b.Fatal(err)
			}
			continue
		}
		if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig14 — naive vs fully optimized Mahif (paper Fig. 14):
// expect N slowest, R+PS+DS fastest, the gap growing with U.
func BenchmarkFig14(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	for _, u := range []int{10, 50} {
		w := benchWorkload(b, ds, workload.Config{Updates: u})
		for _, v := range []core.Variant{core.VariantNaive, core.VariantRFull} {
			b.Run(fmt.Sprintf("U%d/%s", u, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig15 — the naive algorithm's cost (its breakdown is printed
// by cmd/mahif-bench -exp fig15); here the total across sizes.
func BenchmarkFig15(b *testing.B) {
	for _, rows := range []int{benchRows, 4 * benchRows} {
		ds := benchDataset(b, "taxi", rows)
		w := benchWorkload(b, ds, workload.Config{Updates: 20})
		b.Run(fmt.Sprintf("rows%d", rows), func(b *testing.B) { runVariant(b, w, core.VariantNaive) })
	}
}

// BenchmarkFig16 — Mahif breakdown: R+PS+DS vs plain R (Fig. 16);
// expect the optimized variant well under R at equal U.
func BenchmarkFig16(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	for _, u := range []int{10, 50} {
		w := benchWorkload(b, ds, workload.Config{Updates: u})
		for _, v := range []core.Variant{core.VariantR, core.VariantRFull} {
			b.Run(fmt.Sprintf("U%d/%s", u, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig17 — multiple modifications (Fig. 17): cost rises with M,
// R+PS+DS stays ahead of R.
func BenchmarkFig17(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	for _, m := range []int{1, 5, 10} {
		w := benchWorkload(b, ds, workload.Config{Updates: 40, Mods: m})
		for _, v := range []core.Variant{core.VariantR, core.VariantRFull} {
			b.Run(fmt.Sprintf("M%d/%s", m, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig18 — R vs R+PS+DS across datasets (Fig. 18).
func BenchmarkFig18(b *testing.B) {
	for _, name := range []string{"taxi", "tpcc", "ycsb"} {
		ds := benchDataset(b, name, benchRows)
		w := benchWorkload(b, ds, workload.Config{Updates: 30})
		for _, v := range []core.Variant{core.VariantR, core.VariantRFull} {
			b.Run(fmt.Sprintf("%s/%s", name, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig19 — dependent updates (Fig. 19): R+PS degrades as D
// grows; R+PS+DS is mitigated by data slicing.
func BenchmarkFig19(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	for _, d := range []int{1, 50, 100} {
		w := benchWorkload(b, ds, workload.Config{Updates: 40, DependentPct: d})
		for _, v := range []core.Variant{core.VariantRPS, core.VariantRFull} {
			b.Run(fmt.Sprintf("D%d/%s", d, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig20 — affected data (Fig. 20): R+PS flat in T, R+DS grows
// with T.
func BenchmarkFig20(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	for _, t := range []float64{3, 38, 80} {
		w := benchWorkload(b, ds, workload.Config{Updates: 40, DependentPct: 1, AffectedPct: t})
		for _, v := range []core.Variant{core.VariantRPS, core.VariantRDS, core.VariantRFull} {
			b.Run(fmt.Sprintf("T%.0f/%s", t, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// benchDatasetsAtT covers Figs. 21–23: variants across datasets at one
// affected-data setting.
func benchDatasetsAtT(b *testing.B, t float64) {
	for _, name := range []string{"taxi", "tpcc", "ycsb"} {
		ds := benchDataset(b, name, benchRows)
		w := benchWorkload(b, ds, workload.Config{Updates: 30, AffectedPct: t})
		for _, v := range []core.Variant{core.VariantRPS, core.VariantRDS, core.VariantRFull} {
			b.Run(fmt.Sprintf("%s/%s", name, v), func(b *testing.B) { runVariant(b, w, v) })
		}
	}
}

// BenchmarkFig21 — datasets at T0 (Fig. 21): R+DS competitive with the
// combined variant at tiny selectivity.
func BenchmarkFig21(b *testing.B) { benchDatasetsAtT(b, 0.5) }

// BenchmarkFig22 — datasets at T10 (Fig. 22): combined wins.
func BenchmarkFig22(b *testing.B) { benchDatasetsAtT(b, 10) }

// BenchmarkFig23 — datasets at T25 (Fig. 23): combined wins.
func BenchmarkFig23(b *testing.B) { benchDatasetsAtT(b, 25) }

// BenchmarkFig24 — insert-heavy workloads (Fig. 24): cheaper than the
// update-only counterparts of Fig. 22.
func BenchmarkFig24(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	w := benchWorkload(b, ds, workload.Config{Updates: 30, InsertPct: 10})
	for _, v := range []core.Variant{core.VariantRPS, core.VariantRDS, core.VariantRFull} {
		b.Run(string(v), func(b *testing.B) { runVariant(b, w, v) })
	}
}

// BenchmarkFig25 — mixed workloads (Fig. 25).
func BenchmarkFig25(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	w := benchWorkload(b, ds, workload.Config{Updates: 30, InsertPct: 10, DeletePct: 10})
	for _, v := range []core.Variant{core.VariantRPS, core.VariantRDS, core.VariantRFull} {
		b.Run(string(v), func(b *testing.B) { runVariant(b, w, v) })
	}
}

// BenchmarkAblationCompression — Φ_D group count vs slicing cost
// (design-choice ablation, not in the paper).
func BenchmarkAblationCompression(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	w := benchWorkload(b, ds, workload.Config{Updates: 30})
	for _, groups := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("groups%d", groups), func(b *testing.B) {
			vdb, err := w.Load()
			if err != nil {
				b.Fatal(err)
			}
			engine := core.New(vdb)
			opts := core.DefaultOptions()
			opts.Compress = symbolic.CompressOptions{Groups: groups}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationInsertSplit — §10 split on/off under an insert-heavy
// history.
func BenchmarkAblationInsertSplit(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	w := benchWorkload(b, ds, workload.Config{Updates: 30, InsertPct: 20})
	for _, split := range []bool{true, false} {
		b.Run(fmt.Sprintf("split=%v", split), func(b *testing.B) {
			vdb, err := w.Load()
			if err != nil {
				b.Fatal(err)
			}
			engine := core.New(vdb)
			opts := core.OptionsFor(core.VariantRDS)
			opts.InsertSplit = split
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationSlicingAlgorithm — §9 dependency test vs §8.3.3
// greedy (dependency-seeded, ζ-refined).
func BenchmarkAblationSlicingAlgorithm(b *testing.B) {
	ds := benchDataset(b, "taxi", benchRows)
	w := benchWorkload(b, ds, workload.Config{Updates: 15})
	for _, dep := range []bool{true, false} {
		name := "dependency"
		if !dep {
			name = "greedy"
		}
		b.Run(name, func(b *testing.B) {
			vdb, err := w.Load()
			if err != nil {
				b.Fatal(err)
			}
			engine := core.New(vdb)
			opts := core.OptionsFor(core.VariantRPS)
			opts.UseDependency = dep
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := engine.WhatIf(w.Mods, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
